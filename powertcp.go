package powertcp

import (
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/monitor"
	"repro/internal/rdcn"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

// Time and rate units.
type (
	// Time is an absolute simulation timestamp (integer picoseconds).
	Time = sim.Time
	// Duration is a simulated time span (integer picoseconds).
	Duration = sim.Duration
	// BitRate is a bandwidth in bits per second.
	BitRate = units.BitRate
)

// Convenient constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Mbps        = units.Mbps
	Gbps        = units.Gbps
)

// Congestion control.
type (
	// Algorithm is the per-flow congestion-control interface.
	Algorithm = cc.Algorithm
	// Config parameterizes PowerTCP and θ-PowerTCP.
	Config = core.Config
	// HostConfig parameterizes the reliable transport on each host.
	HostConfig = transport.Config
)

// New returns a PowerTCP (Algorithm 1, INT-based) instance.
func New(cfg Config) *core.PowerTCP { return core.New(cfg) }

// NewTheta returns a θ-PowerTCP (Algorithm 2, delay-based) instance.
func NewTheta(cfg Config) *core.ThetaPowerTCP { return core.NewTheta(cfg) }

// Baseline constructors (§4 comparisons plus the Fig. 1 taxonomy
// references).
var (
	NewHPCC   = cc.NewHPCC
	NewTimely = cc.NewTimely
	NewDCQCN  = cc.NewDCQCN
	NewSwift  = cc.NewSwift
	NewDCTCP  = cc.NewDCTCP
	NewReno   = cc.NewReno
	NewCubic  = cc.NewCubic
)

// Unbounded marks a flow with no end (background traffic).
const Unbounded = transport.Unbounded

// Topologies.
type (
	// Network is a wired topology ready to run.
	Network = topo.Network
	// NetOptions are shared topology options (buffers, INT, ECN, queues).
	NetOptions = topo.Options
	// StarConfig, DumbbellConfig and FatTreeConfig describe topologies;
	// FatTreeConfig's defaults are the paper's §4.1 evaluation fabric.
	StarConfig     = topo.StarConfig
	DumbbellConfig = topo.DumbbellConfig
	FatTreeConfig  = topo.FatTreeConfig
	// LeafSpineConfig and ParkingLotConfig cover the two-tier Clos and
	// multi-bottleneck chain used by ablations.
	LeafSpineConfig  = topo.LeafSpineConfig
	ParkingLotConfig = topo.ParkingLotConfig
	// RDCNConfig describes the reconfigurable DCN of §5.
	RDCNConfig = rdcn.Config
	// RDCNNetwork is a built reconfigurable DCN.
	RDCNNetwork = rdcn.Network
)

// Topology builders.
var (
	Star       = topo.Star
	Dumbbell   = topo.Dumbbell
	FatTree    = topo.FatTree
	LeafSpine  = topo.LeafSpine
	ParkingLot = topo.ParkingLot
	BuildRDCN  = rdcn.Build
)

// Routing control plane (internal/route): pluggable multipath
// strategies for NetOptions.Routing, and the per-network Router that
// fails/restores links with control-plane reconvergence.
type (
	// RoutingStrategy decides how equal-cost paths are installed.
	RoutingStrategy = route.Strategy
	// Router is a built network's routing control plane (Network.Router).
	Router = route.Router
	// LinkEvent schedules one link failure or repair (Router.Schedule).
	LinkEvent = route.LinkEvent
)

// Routing strategies and helpers.
var (
	// RoutingSinglePath, RoutingECMP, RoutingWeightedECMP are the three
	// built-in strategies; RoutingByName resolves "single"/"ecmp"/"wecmp".
	RoutingSinglePath   = route.SinglePath{}
	RoutingECMP         = route.ECMP{}
	RoutingWeightedECMP = route.WeightedECMP{}
	RoutingByName       = route.StrategyByName
)

// Monitor wraps a congestion-control algorithm so every update is
// recorded (cwnd/rate/RTT time series; see internal/monitor).
var Monitor = monitor.Wrap

// Hosts adapts a transport configuration into the host factory topology
// builders consume.
func Hosts(cfg HostConfig) topo.HostFactory { return topo.TransportHosts(cfg) }

// Experiments: a named registry of the paper's evaluation scenarios
// (incast, fairness, websearch, rdcn, load-sweep). Build a spec with
// NewSpec plus With* options, run it with RunExperiment, or run many
// concurrently with a Suite. See EXPERIMENTS.md for the
// experiment↔figure index and the paper-vs-measured record.
type (
	// ExperimentSpec names an experiment, a scheme, and the scenario
	// knobs; ExperimentOption mutates one under construction.
	ExperimentSpec   = exp.Spec
	ExperimentOption = exp.Option
	// Experiment is a registered scenario (RegisterExperiment extends
	// the registry with new ones).
	Experiment = exp.Experiment
	// ExperimentResult is the common result envelope: scalar metrics map
	// plus named series, JSON/TSV-encodable. Raw carries the typed
	// payload below.
	ExperimentResult = exp.Result
	Series           = exp.Series
	SeriesPoint      = exp.SeriesPoint
	// ExperimentSuite executes many specs over a worker pool.
	ExperimentSuite = exp.Suite
	// Scheme bundles a congestion-control choice with the switch
	// features it needs; SchemeOption composes ablation variants
	// (Gamma, Alpha, Overcommit, PerRTT, Prebuffer) onto it.
	Scheme       = exp.Scheme
	SchemeOption = exp.SchemeOption

	// Typed experiment payloads (ExperimentResult.Raw).
	IncastResult      = exp.IncastResult
	FairnessResult    = exp.FairnessResult
	WebSearchResult   = exp.WebSearchResult
	RDCNResult        = exp.RDCNResult
	PermutationResult = exp.PermutationResult
	AsymmetryResult   = exp.AsymmetryResult
	FailoverResult    = exp.FailoverResult
)

// Experiment API entry points.
var (
	NewSpec            = exp.NewSpec
	RunExperiment      = exp.Run
	NewSuite           = exp.NewSuite
	RunSuite           = exp.RunSuite
	ResolveScheme      = exp.ResolveScheme
	RegisterScheme     = exp.RegisterScheme
	RegisterExperiment = exp.RegisterExperiment
	ExperimentNames    = exp.ExperimentNames
	SchemeNames        = exp.SchemeNames
)

// Spec options (see the exp package for details).
var (
	WithSeed           = exp.WithSeed
	WithLabel          = exp.WithLabel
	WithSchemeOptions  = exp.WithSchemeOptions
	WithServersPerTor  = exp.WithServersPerTor
	WithTors           = exp.WithTors
	WithFanIn          = exp.WithFanIn
	WithFlowSize       = exp.WithFlowSize
	WithFlows          = exp.WithFlows
	WithStagger        = exp.WithStagger
	WithSizes          = exp.WithSizes
	WithLoad           = exp.WithLoad
	WithLoads          = exp.WithLoads
	WithIncastOverlay  = exp.WithIncastOverlay
	WithBufferSampling = exp.WithBufferSampling
	WithPacketRate     = exp.WithPacketRate
	WithWeeks          = exp.WithWeeks
	WithWindow         = exp.WithWindow
	WithWarmup         = exp.WithWarmup
	WithDuration       = exp.WithDuration
	WithDrain          = exp.WithDrain
	WithSamplePeriod   = exp.WithSamplePeriod
	WithRouting        = exp.WithRouting
	WithSpines         = exp.WithSpines
	WithSpineRates     = exp.WithSpineRates
	WithFailure        = exp.WithFailure
	WithReconverge     = exp.WithReconverge
)

// Scheme options (ablation variants composed at resolution time).
var (
	Gamma      = exp.Gamma
	Alpha      = exp.Alpha
	Overcommit = exp.Overcommit
	PerRTT     = exp.PerRTT
	Prebuffer  = exp.Prebuffer
)

// Scheme names accepted by the scheme registry. The parameterized
// families "homa-oc<N>" (overcommitment) and "retcp-<µs>" (prebuffering)
// are resolvable too.
const (
	SchemePowerTCP      = exp.PowerTCP
	SchemeThetaPowerTCP = exp.ThetaPowerTCP
	SchemeHPCC          = exp.HPCC
	SchemeTimely        = exp.Timely
	SchemeDCQCN         = exp.DCQCN
	SchemeSwift         = exp.Swift
	SchemeDCTCP         = exp.DCTCP
	SchemeReno          = exp.Reno
	SchemeCubic         = exp.Cubic
	SchemeHoma          = exp.Homa
	SchemeReTCP600      = exp.ReTCP600
	SchemeReTCP1800     = exp.ReTCP1800
)

// Composable scenario API (internal/scenario): an experiment is a
// Scenario value with four orthogonal axes — Topology × Traffic ×
// Events × Probes — executed by the generic RunScenario. The registered
// experiments above are presets over this layer; compose new scenarios
// (mixed traffic-class schemes, bursts during failovers, load steps)
// directly from these values instead of writing runner code.
type (
	// Scenario is the declarative experiment value.
	Scenario = scenario.Scenario
	// ScenarioFabric is the topology metadata traffic selectors resolve
	// against; ScenarioEnv is the built run probes observe.
	ScenarioFabric = scenario.Fabric
	ScenarioEnv    = scenario.Env
	// Traffic, ScenarioEvent and Probe are the per-axis element
	// interfaces; Timeline carries events plus reconvergence delay.
	Traffic       = scenario.Traffic
	ScenarioEvent = scenario.Event
	Probe         = scenario.Probe
	Timeline      = scenario.Timeline
	// Host/switch selectors keep scenarios valid across fabric scales.
	HostRef   = scenario.HostRef
	SwitchRef = scenario.SwitchRef
	HostSpan  = scenario.Span
	FlowSpec  = scenario.FlowSpec

	// Topology axis.
	StarTopology      = scenario.StarTopology
	FatTreeTopology   = scenario.FatTreeTopology
	LeafSpineTopology = scenario.LeafSpineTopology
	RotorTopology     = scenario.RotorTopology

	// Traffic axis.
	Flows              = scenario.Flows
	IncastPulse        = scenario.IncastPulse
	Staggered          = scenario.Staggered
	PoissonLoad        = scenario.PoissonLoad
	IncastRequests     = scenario.IncastRequests
	PermutationTraffic = scenario.Permutation
	RackPairs          = scenario.RackPairs
	CustomTraffic      = scenario.Custom

	// Events axis.
	LinkFail      = scenario.LinkFail
	LinkRestore   = scenario.LinkRestore
	InjectTraffic = scenario.InjectTraffic

	// Probes axis.
	GoodputProbe = scenario.GoodputProbe
	QueueProbe   = scenario.QueueProbe
	FCTProbe     = scenario.FCTProbe
	CwndProbe    = scenario.CwndProbe
)

// Scenario entry points and selectors.
var (
	RunScenario       = scenario.Run
	TrafficWithScheme = scenario.WithScheme
	Host              = scenario.Host
	HostFromEnd       = scenario.HostFromEnd
	RackStart         = scenario.RackStart
	RackHost          = scenario.RackHost
	SwitchIndex       = scenario.SwitchIndex
	Leaf              = scenario.Leaf
	Spine             = scenario.Spine
	Tor               = scenario.Tor
	Agg               = scenario.Agg
	Core              = scenario.Core
)

// UnboundedFlowSize marks a scenario flow as endless background
// traffic; launch resolves it to the scheme-appropriate size.
const UnboundedFlowSize = scenario.Unbounded

// Fluid model (Figures 2–3 and Theorems 1–2).
type (
	// FluidSystem is the single-bottleneck fluid model of §2/App. A.
	FluidSystem = fluid.System
	// FluidState is (aggregate window, queue) in bytes.
	FluidState = fluid.State
	// FluidLaw selects the control-law family of the fluid model.
	FluidLaw = fluid.Law
)

// Control-law families of the fluid model.
const (
	LawVoltage = fluid.Voltage
	LawCurrent = fluid.Current
	LawPower   = fluid.Power
)
