// Package powertcp is a from-scratch Go reproduction of "PowerTCP:
// Pushing the Performance Limits of Datacenter Networks" (Addanki,
// Michel, Schmid — USENIX NSDI 2022).
//
// PowerTCP is a congestion-control law that reacts to network *power*:
// the product of voltage ν = q + b·τ (buffered bytes plus
// bandwidth-delay product — the absolute state voltage-based schemes
// like HPCC and Swift react to) and current λ = q̇ + µ (the state's
// trend, which current-based schemes like TIMELY react to). Reacting to
// the product captures both dimensions at once: congestion onset is
// visible at near-zero queues, and the reaction strength still scales
// with how much standing queue there is.
//
// # The layers, bottom up
//
//   - internal/sim: deterministic single-threaded discrete-event engine
//     (picosecond clock, pooled events, re-armable timers). Everything
//     above schedules here; determinism and the zero-allocation hot
//     path are its invariants.
//   - internal/packet, internal/queue, internal/buffer, internal/link:
//     the data plane — pooled packets, queue disciplines, shared-memory
//     Dynamic-Thresholds buffers, and egress ports that serialize onto
//     point-to-point wires (and can be cut for failure experiments).
//   - internal/swtch: an output-queued switch with table-driven
//     forwarding, ECMP flow hashing, RED/ECN marking and INT stamping at
//     dequeue.
//   - internal/route: the routing control plane — pluggable multipath
//     strategies (single-path, ECMP, weighted ECMP) computed over the
//     switch graph, plus scheduled link failures with control-plane
//     reconvergence.
//   - internal/topo: topology builders (fat-tree, leaf-spine, star,
//     dumbbell, parking lot) that wire hosts, switches, pool and router
//     into a runnable Network.
//   - internal/transport and internal/homa: the sender-based reliable
//     transport the cc algorithms drive, and the receiver-driven HOMA
//     transport.
//   - internal/core and internal/cc: PowerTCP/θ-PowerTCP and every
//     baseline (HPCC, TIMELY, DCQCN, Swift, DCTCP, Reno, Cubic).
//   - internal/exp: the experiment registry, scheme registry, result
//     envelope and parallel suite runner behind every figure.
//
// This package re-exports the public surface of those layers; see
// README.md for the quickstart, EXPERIMENTS.md for the
// experiment↔figure index, and PERF.md for the performance contract.
//
// Quick start (two hosts, one bottleneck):
//
//	net := powertcp.Dumbbell(powertcp.DumbbellConfig{Left: 1, Right: 1,
//	    Opts: powertcp.NetOptions{Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 16 * powertcp.Microsecond}), INT: true}})
//	src, dst := net.TransportHost(0), net.TransportHost(1)
//	src.StartFlow(net.NextFlowID(), dst.ID(), 1<<20, powertcp.New(powertcp.Config{}), 0)
//	net.Eng.Run()
package powertcp
