package powertcp_test

// The docs gate: CI runs `go test -run TestDocs .` so the front-door
// documentation cannot rot. It enforces three properties:
//
//  1. Every package under internal/ and cmd/ (and the root package)
//     carries a godoc package comment.
//  2. Every Go snippet in README.md parses, and every `powertcp.X`
//     identifier it references is actually exported by the root package.
//  3. Every `go run ./cmd/...` command in README.md or PERF.md points
//     at a real main package, and every cmd/ directory is mentioned in
//     the README.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// packageDoc reports whether any non-test Go file in dir carries a
// package doc comment, and the package name found.
func packageDoc(t *testing.T, dir string) (documented bool, pkg string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		pkg = f.Name.Name
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 20 {
			return true, pkg
		}
	}
	return false, pkg
}

func TestDocsInternalPackagesHaveGodoc(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("found only %d internal packages — wrong working directory?", len(dirs))
	}
	cmds, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) == 0 {
		t.Fatal("found no cmd packages — wrong working directory?")
	}
	check := append(append(dirs, cmds...), ".")
	for _, dir := range check {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		ok, pkg := packageDoc(t, dir)
		if pkg == "" {
			continue // no Go files (shouldn't happen)
		}
		if !ok {
			t.Errorf("package %s (%s) has no godoc package comment", pkg, dir)
		}
	}
}

// rootExports collects the exported top-level identifiers of the root
// powertcp package.
func rootExports(t *testing.T) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					out[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							out[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								out[n.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return out
}

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

func TestDocsReadmeSnippetsBuild(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	snippets := goFence.FindAllStringSubmatch(string(readme), -1)
	if len(snippets) == 0 {
		t.Fatal("README.md has no Go snippets — the front-door example is gone")
	}
	exports := rootExports(t)
	fset := token.NewFileSet()
	for i, m := range snippets {
		snippet := m[1]
		src := snippet
		if !strings.Contains(snippet, "func ") && !strings.Contains(snippet, "package ") {
			src = "func _() {\n" + snippet + "\n}"
		}
		if !strings.Contains(src, "package ") {
			src = "package readme\n" + src
		}
		f, err := parser.ParseFile(fset, "snippet.go", src, 0)
		if err != nil {
			t.Errorf("README snippet %d does not parse: %v\n%s", i+1, err, snippet)
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || base.Name != "powertcp" {
				return true
			}
			if !exports[sel.Sel.Name] {
				t.Errorf("README snippet %d references powertcp.%s, which the root package does not export",
					i+1, sel.Sel.Name)
			}
			return true
		})
	}

	// Shell snippets: every `go run ./cmd/...` target mentioned in the
	// front-door docs must exist.
	goRunRE := regexp.MustCompile(`go run (\./cmd/[a-z]+)`)
	for _, doc := range []string{"README.md", "PERF.md"} {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range goRunRE.FindAllStringSubmatch(string(body), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s references %s, which does not exist", doc, m[1])
			}
		}
	}

	// The fuzz workflow documentation must point at the real pinned
	// corpus: the directory exists, holds the committed counterexamples,
	// and the README tells readers where to put new ones.
	corpusDir := filepath.Join("internal", "fuzzlab", "testdata", "corpus")
	if !strings.Contains(string(readme), "internal/fuzzlab/testdata/corpus") {
		t.Errorf("README.md never mentions %s — document how shrunk repros get pinned", corpusDir)
	}
	pinned, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) < 5 {
		t.Errorf("pinned corpus %s holds %d specs, want ≥5 — the documented regression gate is hollow", corpusDir, len(pinned))
	}

	// And the reverse: every command under cmd/ must be documented in
	// the README, so new tools (powervet included) stay discoverable.
	cmds, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range cmds {
		if !strings.Contains(string(readme), dir) {
			t.Errorf("README.md never mentions %s — document what it is for", dir)
		}
	}
}
