// Incast: the paper's Figure 4 scenario at example scale.
//
// A receiver already sinking a long flow is hit by a 32:1 incast from
// other racks of the fat-tree. The program builds one spec per scheme
// (PowerTCP, θ-PowerTCP, HPCC, TIMELY, HOMA) and runs them as a single
// suite across all cores, then prints the comparison the figure makes
// visually: peak queue, post-incast queue, and receiver goodput.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	powertcp "repro"
)

func main() {
	schemes := []string{
		powertcp.SchemePowerTCP,
		powertcp.SchemeThetaPowerTCP,
		powertcp.SchemeHPCC,
		powertcp.SchemeTimely,
		powertcp.SchemeHoma,
	}
	var specs []powertcp.ExperimentSpec
	for _, scheme := range schemes {
		specs = append(specs, powertcp.NewSpec("incast", scheme,
			powertcp.WithFanIn(32), powertcp.WithSeed(1)))
	}
	results, err := powertcp.RunSuite(specs...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("32:1 incast onto the receiver of a long flow (fat-tree, 25G hosts)")
	fmt.Printf("%-16s %12s %12s %14s %10s\n",
		"scheme", "peak queue", "end queue", "goodput", "done")
	for _, res := range results {
		r := res.Raw.(*powertcp.IncastResult)
		fmt.Printf("%-16s %10.0fKB %10.0fKB %11.1fGbps %6d/%d\n",
			r.Scheme, r.PeakQueueKB, r.EndQueueKB, r.AvgGoodputGbps,
			r.Completed, r.FanIn)
	}
	fmt.Println("\nPowerTCP's takeaway: the queue drains back to ≈0 without the")
	fmt.Println("receiver losing goodput — fast reaction *and* accurate inflight control.")
}
