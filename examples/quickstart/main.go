// Quickstart: the two smallest end-to-end uses of the library.
//
// Act 1 builds a dumbbell through the low-level API, transfers 4 MiB
// under PowerTCP, and prints the flow completion time plus the
// bottleneck queue observed along the way.
//
// Act 2 does the same category of thing through the experiment API: one
// registry spec (NewSpec + With* options + RunExperiment) reproduces a
// whole paper scenario and returns the common result envelope — scalar
// metrics plus named series, encodable as JSON/TSV. Ablations compose as
// scheme options (WithSchemeOptions(Gamma(0.7))) instead of bespoke
// runner arguments; suites of specs run concurrently via RunSuite.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	powertcp "repro"
)

func main() {
	lowLevel()
	experimentAPI()
}

// lowLevel drives the simulator directly: topology, hosts, one flow.
func lowLevel() {
	net := powertcp.Dumbbell(powertcp.DumbbellConfig{
		Left: 1, Right: 1,
		HostRate:       100 * powertcp.Gbps,
		BottleneckRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 16 * powertcp.Microsecond}),
			INT:   true, // PowerTCP consumes in-band telemetry
		},
	})

	src, dst := net.TransportHost(0), net.TransportHost(1)

	const size = 4 << 20
	flow := src.StartFlow(net.NextFlowID(), dst.ID(), size, powertcp.New(powertcp.Config{}), 0)

	// Sample the bottleneck queue every 100 µs while the flow runs.
	var peakQueue int64
	bottleneck := net.BottleneckPort()
	var sample func()
	sample = func() {
		if q := bottleneck.QueueBytes(); q > peakQueue {
			peakQueue = q
		}
		if !flow.Done {
			net.Eng.After(100*powertcp.Microsecond, sample)
		}
	}
	net.Eng.After(0, sample)

	net.Eng.Run()

	fmt.Println("— low-level API: one 4 MiB PowerTCP transfer over a 25G dumbbell —")
	fmt.Printf("transferred  : %d bytes\n", dst.ReceivedTotal())
	fmt.Printf("FCT          : %v\n", flow.FCT())
	fmt.Printf("goodput      : %.2f Gbps\n",
		float64(size)*8/flow.FCT().Seconds()/1e9)
	fmt.Printf("peak queue   : %.1f KB (PowerTCP keeps it near β = bandwidth·τ/N)\n",
		float64(peakQueue)/1024)
	fmt.Printf("retransmits  : %d\n", flow.Retransmits)
}

// experimentAPI runs a registered paper scenario through one spec.
func experimentAPI() {
	res, err := powertcp.RunExperiment(powertcp.NewSpec(
		"incast", powertcp.SchemePowerTCP,
		powertcp.WithFanIn(10),
		powertcp.WithSeed(1),
		// Ablations compose as scheme options; try Gamma(0.5) here.
		powertcp.WithSchemeOptions(powertcp.Gamma(0.9)),
	))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n— experiment API: the Figure 4 incast as a registry spec —")
	fmt.Printf("experiment   : %s (scheme %s, seed %d)\n", res.Experiment, res.Scheme, res.Seed)
	for _, name := range res.ScalarNames() {
		fmt.Printf("%-18s: %g\n", name, res.Scalar(name))
	}
	for _, s := range res.Series {
		fmt.Printf("series %-12s: %d samples\n", s.Name, len(s.Points))
	}
	fmt.Println("\nEvery figure of the paper is a set of these specs; cmd/figures runs")
	fmt.Println("them as parallel suites. See EXPERIMENTS.md for the full index.")
}
