// Quickstart: two hosts, one 25 Gbps bottleneck, one PowerTCP flow.
//
// Builds a dumbbell through the public API, transfers 4 MiB under
// PowerTCP, and prints the flow completion time plus the bottleneck
// queue observed along the way — the smallest possible end-to-end use of
// the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	powertcp "repro"
)

func main() {
	net := powertcp.Dumbbell(powertcp.DumbbellConfig{
		Left: 1, Right: 1,
		HostRate:       100 * powertcp.Gbps,
		BottleneckRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 16 * powertcp.Microsecond}),
			INT:   true, // PowerTCP consumes in-band telemetry
		},
	})

	src, dst := net.TransportHost(0), net.TransportHost(1)

	const size = 4 << 20
	flow := src.StartFlow(net.NextFlowID(), dst.ID(), size, powertcp.New(powertcp.Config{}), 0)

	// Sample the bottleneck queue every 100 µs while the flow runs.
	var peakQueue int64
	bottleneck := net.BottleneckPort()
	var sample func()
	sample = func() {
		if q := bottleneck.QueueBytes(); q > peakQueue {
			peakQueue = q
		}
		if !flow.Done {
			net.Eng.After(100*powertcp.Microsecond, sample)
		}
	}
	net.Eng.After(0, sample)

	net.Eng.Run()

	fmt.Printf("transferred  : %d bytes\n", dst.ReceivedTotal())
	fmt.Printf("FCT          : %v\n", flow.FCT())
	fmt.Printf("goodput      : %.2f Gbps\n",
		float64(size)*8/flow.FCT().Seconds()/1e9)
	fmt.Printf("peak queue   : %.1f KB (PowerTCP keeps it near β = bandwidth·τ/N)\n",
		float64(peakQueue)/1024)
	fmt.Printf("retransmits  : %d\n", flow.Retransmits)
}
