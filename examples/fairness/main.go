// Fairness: the paper's Figure 5 scenario.
//
// Four flows start 1 ms apart on one 25 Gbps bottleneck and leave in
// arrival order. The program prints each flow's share over time under
// PowerTCP — the staircase converging to the fair share at every arrival
// and departure — plus the mean Jain fairness index.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	powertcp "repro"
)

func main() {
	res, err := powertcp.RunExperiment(powertcp.NewSpec(
		"fairness", powertcp.SchemePowerTCP, powertcp.WithSeed(1)))
	if err != nil {
		log.Fatal(err)
	}
	r := res.Raw.(*powertcp.FairnessResult)

	fmt.Println("four staggered PowerTCP flows on a 25G bottleneck (Gbps per flow)")
	fmt.Printf("%8s %8s %8s %8s %8s\n", "t(ms)", "flow1", "flow2", "flow3", "flow4")
	for k := 0; k < len(r.T); k += len(r.T) / 16 {
		fmt.Printf("%8.2f", r.T[k].Seconds()*1e3)
		for i := range r.Per {
			fmt.Printf(" %8.2f", r.Per[i][k])
		}
		fmt.Println()
	}
	fmt.Printf("\nmean Jain fairness index: %.3f (1.0 = perfectly fair)\n", r.JainAvg)
	fmt.Println("Theorem 3: PowerTCP is β-weighted proportionally fair; with equal β")
	fmt.Println("the allocation is max-min fair, which is what the staircase shows.")
}
