// RDCN: the paper's §5 case study at example scale.
//
// A rotor-based reconfigurable datacenter cycles 100 Gbps circuits
// between ToR pairs (225 µs days, 20 µs nights). The program compares
// PowerTCP against reTCP (600/1800 µs prebuffering) and HPCC on circuit
// utilization and tail queuing latency — the trade-off of Figure 8 — and
// prints PowerTCP's throughput reaction around one circuit day. The four
// schemes run as one parallel suite.
//
//	go run ./examples/rdcn
package main

import (
	"fmt"
	"log"

	powertcp "repro"
)

func main() {
	schemes := []string{
		powertcp.SchemePowerTCP,
		powertcp.SchemeHPCC,
		powertcp.SchemeReTCP600,
		powertcp.SchemeReTCP1800,
	}
	var specs []powertcp.ExperimentSpec
	for _, scheme := range schemes {
		specs = append(specs, powertcp.NewSpec("rdcn", scheme, powertcp.WithSeed(1)))
	}
	results, err := powertcp.RunSuite(specs...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reconfigurable DCN: who fills the circuit, and at what latency cost?")
	fmt.Printf("%-14s %18s %20s %14s\n",
		"scheme", "circuit util", "tail queuing (p99)", "goodput")
	for _, res := range results {
		r := res.Raw.(*powertcp.RDCNResult)
		fmt.Printf("%-14s %17.1f%% %18.1fµs %11.1fGbps\n",
			r.Scheme, r.CircuitUtilization*100, r.TailQueuingUs, r.AvgGoodputGbps)
	}

	// Show the bandwidth-tracking behaviour: PowerTCP's pair throughput
	// around its circuit day (the gray region of Fig. 8a).
	r := results[0].Raw.(*powertcp.RDCNResult)
	fmt.Println("\nPowerTCP pair throughput (Gbps) and VOQ (KB) across the first rotor week:")
	step := len(r.T) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.T)/3; i += step {
		bar := int(r.Throughput[i] / 4)
		fmt.Printf("%7.2fms %7.1fG %7.0fKB |%s\n",
			r.T[i].Seconds()*1e3, r.Throughput[i], r.VOQKB[i], bars(bar))
	}
	fmt.Println("\nThe spike is the circuit day: PowerTCP ramps within ~1 RTT of the")
	fmt.Println("bandwidth appearing, without reTCP's prebuffered queue sitting in the VOQ.")
}

func bars(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
