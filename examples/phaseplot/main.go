// Phaseplot: the paper's Figure 3 from the fluid model.
//
// Integrates the single-bottleneck fluid equations under the voltage-,
// current- and power-based control laws from several initial states and
// prints each trajectory in (window, inflight) coordinates — the phase
// plots showing that only the power-based law combines a unique
// equilibrium with no throughput loss. Output is CSV for plotting.
//
//	go run ./examples/phaseplot > fig3.csv
package main

import (
	"fmt"

	powertcp "repro"
)

func main() {
	mss := 1048.0
	inits := []powertcp.FluidState{
		{W: 20 * mss, Q: 0},
		{W: 500 * mss, Q: 100 * mss},
		{W: 1500 * mss, Q: 300 * mss},
	}
	fmt.Println("law,trajectory,step,window_pkts,inflight_pkts,queue_pkts")
	for _, law := range []powertcp.FluidLaw{
		powertcp.LawVoltage, powertcp.LawCurrent, powertcp.LawPower,
	} {
		s := &powertcp.FluidSystem{
			B:     100 * powertcp.Gbps,
			Tau:   20 * powertcp.Microsecond,
			Gamma: 0.9,
			Dt:    10 * powertcp.Microsecond,
			Beta:  12_500,
			Law:   law,
		}
		for ti, st0 := range inits {
			tr := s.Trajectory(st0, 2e-6, 1200)
			for i := 0; i < len(tr); i += 20 {
				fmt.Printf("%s,%d,%d,%.1f,%.1f,%.1f\n",
					law, ti, i,
					tr[i].W/mss, s.Inflight(tr[i])/mss, tr[i].Q/mss)
			}
		}
	}
}
