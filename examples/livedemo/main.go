// Livedemo: PowerTCP over real UDP sockets.
//
// The paper's proof of concept split the system into a Linux kernel
// congestion-control module and a Tofino INT pipeline (§3.6). This demo
// is the same split in userspace: a sender paces wire-format packets
// through a rate-limited bottleneck process on 127.0.0.1 that stamps
// quantized INT records at dequeue; the receiver echoes them on ACKs and
// the very same PowerTCP implementation the simulator uses closes the
// loop on wall-clock measurements.
//
//	go run ./examples/livedemo
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	const bottleneck = 100 * units.Mbps
	snd, bn, rcv, cleanup, err := livenet.Loopback(bottleneck, 256<<10)
	if err != nil {
		log.Fatalf("loopback rig: %v", err)
	}
	defer cleanup()

	mon := monitor.Wrap(core.New(core.Config{}), 2*sim.Millisecond)
	const size = 500_000
	fmt.Printf("transferring %d bytes through a real %v UDP bottleneck...\n", size, bottleneck)
	st, err := snd.Transfer(bn.Addr(), 1, size, mon,
		2*sim.Millisecond, 10*units.Gbps, 30*time.Second)
	if err != nil {
		log.Fatalf("transfer: %v (%v)", err, bn)
	}

	fmt.Printf("  received   : %d bytes\n", rcv.Received())
	fmt.Printf("  elapsed    : %v\n", st.Elapsed)
	fmt.Printf("  goodput    : %.1f Mbps (bottleneck %v)\n", float64(st.Goodput)/1e6, bottleneck)
	fmt.Printf("  drops      : %d, retransmit rounds: %d\n", bn.Drops(), st.Retransmits)

	fmt.Println("\nwindow trajectory (wall clock, measured from live INT):")
	for _, s := range mon.Samples {
		bar := int(s.Cwnd / 100_000)
		if bar > 30 {
			bar = 30
		}
		marks := make([]byte, bar)
		for i := range marks {
			marks[i] = '#'
		}
		fmt.Printf("  %8.1fms cwnd=%8.0fB rtt=%7.2fms %s\n",
			float64(s.At)/float64(sim.Millisecond), s.Cwnd,
			float64(s.RTT)/float64(sim.Millisecond), marks)
	}
	fmt.Println("\nThe window starts at the (oversized) host BDP, collapses when the")
	fmt.Println("first round of power measurements reveals the 200 Mbps bottleneck,")
	fmt.Println("and settles just above the bandwidth-delay product.")
	os.Exit(0)
}
