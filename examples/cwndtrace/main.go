// Cwndtrace: watch PowerTCP's window react to an incast.
//
// A long PowerTCP flow crosses a 25 Gbps star; 1 ms in, eight competing
// flows slam the same receiver. The program wraps the long flow's
// congestion controller in a monitor and prints its cwnd/rate/RTT
// trajectory: line-rate start, the sharp multiplicative cut when the
// burst's power spike arrives (within ~1 RTT), and the climb back as the
// competitors finish.
//
//	go run ./examples/cwndtrace
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/units"
)

func main() {
	net := topo.Star(topo.StarConfig{
		Hosts:    10,
		HostRate: 25 * units.Gbps,
		Opts: topo.Options{
			Hosts:         topo.TransportHosts(transport.Config{BaseRTT: 12 * sim.Microsecond}),
			BufferPerGbps: topo.TofinoBufferPerGbps,
			INT:           true,
		},
	})

	// The monitored long flow: host 1 → host 0.
	mon := monitor.Wrap(core.New(core.Config{}), 20*sim.Microsecond)
	net.TransportHost(1).StartFlow(net.NextFlowID(), net.HostID(0),
		transport.Unbounded, mon, 0)

	// The incast: hosts 2..9 send 300 KB each at t = 1 ms.
	for i := 2; i < 10; i++ {
		net.TransportHost(i).StartFlow(net.NextFlowID(), net.HostID(0),
			300_000, core.New(core.Config{}), sim.Time(sim.Millisecond))
	}

	net.Eng.RunUntil(sim.Time(3 * sim.Millisecond))

	fmt.Println("PowerTCP window trajectory through an 8:1 incast (incast at t=1000µs)")
	fmt.Printf("%10s %12s %10s %10s  %s\n", "t(µs)", "cwnd(B)", "rate(G)", "RTT(µs)", "")
	for _, s := range mon.Samples {
		bar := int(s.Cwnd / 1500)
		if bar > 40 {
			bar = 40
		}
		marks := make([]byte, bar)
		for i := range marks {
			marks[i] = '*'
		}
		fmt.Printf("%10.0f %12.0f %10.2f %10.2f  %s\n",
			float64(s.At)/float64(sim.Microsecond), s.Cwnd,
			float64(s.Rate)/1e9, s.RTT.Micros(), marks)
	}
	fmt.Println("\nThe cut at ≈1010µs is the power signal reacting to the burst within")
	fmt.Println("one RTT; the staircase afterwards is the γ-damped recovery to fair share.")
}
