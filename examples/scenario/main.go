// Command scenario demonstrates the composable scenario API: a custom
// traffic mix — PowerTCP websearch background plus a Reno bulk class —
// with a mid-run spine-link failure, assembled in ~20 lines and run by
// the generic scenario runner. No per-experiment runner code: the
// topology, the traffic components, the event timeline and the probes
// are plain values.
package main

import (
	"fmt"
	"os"

	powertcp "repro"
)

func main() {
	scheme, err := powertcp.ResolveScheme(powertcp.SchemePowerTCP)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := powertcp.RunScenario(powertcp.Scenario{
		Scheme:   scheme,
		Seed:     1,
		Topology: powertcp.LeafSpineTopology{Leaves: 3, Spines: 2, ServersPerLeaf: 8},
		Traffic: []powertcp.Traffic{
			powertcp.PoissonLoad{Load: 0.2, Horizon: 4 * powertcp.Millisecond},
			powertcp.TrafficWithScheme(powertcp.SchemeReno, powertcp.Flows{List: []powertcp.FlowSpec{
				{Src: powertcp.RackHost(0, 0), Dst: powertcp.RackHost(2, 0), Size: 16 << 20},
			}}),
		},
		Events: powertcp.Timeline{
			Events: []powertcp.ScenarioEvent{
				powertcp.LinkFail{At: powertcp.Millisecond, A: powertcp.Leaf(2), B: powertcp.Spine(0)},
				powertcp.LinkRestore{At: 3 * powertcp.Millisecond, A: powertcp.Leaf(2), B: powertcp.Spine(0)},
			},
			Reconverge: 200 * powertcp.Microsecond,
		},
		Probes: []powertcp.Probe{
			powertcp.FCTProbe{},
			&powertcp.GoodputProbe{Period: 50 * powertcp.Microsecond},
		},
		Until: 6 * powertcp.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("flows: %d started, %d completed through a 2ms spine outage\n",
		int(res.Scalar("started")), int(res.Scalar("completed")))
	fmt.Printf("mean goodput: %.1f Gbps, websearch p99.9 slowdown (short flows): %.1f\n",
		res.Scalar("goodput_gbps_avg"), res.Scalar("short_p999"))
}
