// Websearch: the paper's Figure 6 headline at example scale.
//
// Offers the web-search flow-size distribution at 60% ToR-uplink load on
// the oversubscribed fat-tree and prints the 99.9th-percentile FCT
// slowdown per flow-size bin for PowerTCP, θ-PowerTCP, HPCC, TIMELY and
// DCQCN — the comparison behind the paper's "−80% vs DCQCN/TIMELY, −33%
// vs HPCC for short flows" claim. The five cells run as one parallel
// suite.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	powertcp "repro"
	"repro/internal/stats"
)

func main() {
	schemes := []string{
		powertcp.SchemePowerTCP,
		powertcp.SchemeThetaPowerTCP,
		powertcp.SchemeHPCC,
		powertcp.SchemeTimely,
		powertcp.SchemeDCQCN,
	}
	var specs []powertcp.ExperimentSpec
	for _, scheme := range schemes {
		specs = append(specs, powertcp.NewSpec("websearch", scheme,
			powertcp.WithLoad(0.6), powertcp.WithSeed(1)))
	}
	results, err := powertcp.RunSuite(specs...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("websearch workload at 60% load — 99.9p FCT slowdown per size bin")
	fmt.Printf("%-16s", "scheme")
	for _, b := range stats.FlowSizeBins {
		fmt.Printf("%8s", "≤"+stats.SizeLabel(b))
	}
	fmt.Printf("%10s\n", "done")
	for _, res := range results {
		r := res.Raw.(*powertcp.WebSearchResult)
		fmt.Printf("%-16s", r.Scheme)
		for _, v := range r.Binned.Row(99.9) {
			fmt.Printf("%8.1f", v)
		}
		fmt.Printf("%7d/%d\n", r.Completed, r.Started)
	}
	fmt.Println("\nShort-flow bins (≤10KB) are where power-based control pays off: the")
	fmt.Println("bottleneck queue stays near zero, so tail latency tracks the base RTT.")
}
