package powertcp_test

import (
	"fmt"

	powertcp "repro"
)

// ExampleNew transfers one megabyte under PowerTCP across a 25 Gbps
// bottleneck and reports completion. Runs are fully deterministic.
func ExampleNew() {
	net := powertcp.Dumbbell(powertcp.DumbbellConfig{
		Left: 1, Right: 1,
		HostRate:       100 * powertcp.Gbps,
		BottleneckRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 16 * powertcp.Microsecond}),
			INT:   true,
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), 1<<20, powertcp.New(powertcp.Config{}), 0)
	net.Eng.Run()
	fmt.Printf("done=%v bytes=%d retransmits=%d\n", f.Done, dst.ReceivedTotal(), f.Retransmits)
	// Output: done=true bytes=1048576 retransmits=0
}

// ExampleRunExperiment runs one registered experiment through the
// spec/registry API — the same path cmd/figures and the benchmarks use.
func ExampleRunExperiment() {
	res, err := powertcp.RunExperiment(powertcp.NewSpec(
		"incast", powertcp.SchemePowerTCP,
		powertcp.WithFanIn(10), powertcp.WithSeed(1),
	))
	if err != nil {
		panic(err)
	}
	ic := res.Raw.(*powertcp.IncastResult)
	fmt.Printf("completed=%d/%d\n", ic.Completed, ic.FanIn)
	// Output: completed=10/10
}

// ExampleFluidSystem checks Theorem 1 numerically: both eigenvalues of
// the linearized PowerTCP system are negative, so the equilibrium
// (bτ+β̂, β̂) is asymptotically stable.
func ExampleFluidSystem() {
	s := &powertcp.FluidSystem{
		B:     100 * powertcp.Gbps,
		Tau:   20 * powertcp.Microsecond,
		Gamma: 0.9,
		Dt:    10 * powertcp.Microsecond,
		Beta:  12_500,
		Law:   powertcp.LawPower,
	}
	e1, e2 := s.Eigenvalues()
	eq, _ := s.Equilibrium()
	fmt.Printf("stable=%v w_e=%.0f q_e=%.0f\n", e1 < 0 && e2 < 0, eq.W, eq.Q)
	// Output: stable=true w_e=262500 q_e=12500
}

// ExampleNewTheta runs the standalone (no-INT) variant: only RTT
// timestamps feed the control law.
func ExampleNewTheta() {
	net := powertcp.Star(powertcp.StarConfig{
		Hosts:    2,
		HostRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 10 * powertcp.Microsecond}),
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), 200_000, powertcp.NewTheta(powertcp.Config{}), 0)
	net.Eng.Run()
	fmt.Printf("done=%v\n", f.Done)
	// Output: done=true
}
