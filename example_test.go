package powertcp_test

import (
	"fmt"

	powertcp "repro"
)

// ExampleNew transfers one megabyte under PowerTCP across a 25 Gbps
// bottleneck and reports completion. Runs are fully deterministic.
func ExampleNew() {
	net := powertcp.Dumbbell(powertcp.DumbbellConfig{
		Left: 1, Right: 1,
		HostRate:       100 * powertcp.Gbps,
		BottleneckRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 16 * powertcp.Microsecond}),
			INT:   true,
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), 1<<20, powertcp.New(powertcp.Config{}), 0)
	net.Eng.Run()
	fmt.Printf("done=%v bytes=%d retransmits=%d\n", f.Done, dst.ReceivedTotal(), f.Retransmits)
	// Output: done=true bytes=1048576 retransmits=0
}

// ExampleRunExperiment runs one registered experiment through the
// spec/registry API — the same path cmd/figures and the benchmarks use.
func ExampleRunExperiment() {
	res, err := powertcp.RunExperiment(powertcp.NewSpec(
		"incast", powertcp.SchemePowerTCP,
		powertcp.WithFanIn(10), powertcp.WithSeed(1),
	))
	if err != nil {
		panic(err)
	}
	ic := res.Raw.(*powertcp.IncastResult)
	fmt.Printf("completed=%d/%d\n", ic.Completed, ic.FanIn)
	// Output: completed=10/10
}

// ExampleScenario composes an experiment from the four scenario axes —
// topology, traffic, events, probes — and runs it through the generic
// scenario runner: cross-rack background flows plus an incast pulse
// that lands while a spine link is down. No runner code, one value.
func ExampleScenario() {
	scheme, err := powertcp.ResolveScheme(powertcp.SchemePowerTCP)
	if err != nil {
		panic(err)
	}
	res, err := powertcp.RunScenario(powertcp.Scenario{
		Scheme:   scheme,
		Seed:     1,
		Topology: powertcp.LeafSpineTopology{Leaves: 2, Spines: 2, ServersPerLeaf: 4},
		Traffic: []powertcp.Traffic{
			powertcp.RackPairs{FromRack: powertcp.RackStart(0), ToRack: powertcp.RackStart(1), Count: 2},
			powertcp.IncastPulse{At: 500 * powertcp.Microsecond,
				Receiver: powertcp.RackHost(1, 3), FanIn: 4, FlowSize: 200_000},
		},
		Events: powertcp.Timeline{
			Events: []powertcp.ScenarioEvent{
				powertcp.LinkFail{At: 400 * powertcp.Microsecond, A: powertcp.Leaf(1), B: powertcp.Spine(0)},
				powertcp.LinkRestore{At: 1200 * powertcp.Microsecond, A: powertcp.Leaf(1), B: powertcp.Spine(0)},
			},
			Reconverge: 100 * powertcp.Microsecond,
		},
		Probes: []powertcp.Probe{powertcp.FCTProbe{}},
		Until:  3 * powertcp.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("incast flows completed=%d\n", int(res.Scalar("completed")))
	// Output: incast flows completed=4
}

// ExampleFluidSystem checks Theorem 1 numerically: both eigenvalues of
// the linearized PowerTCP system are negative, so the equilibrium
// (bτ+β̂, β̂) is asymptotically stable.
func ExampleFluidSystem() {
	s := &powertcp.FluidSystem{
		B:     100 * powertcp.Gbps,
		Tau:   20 * powertcp.Microsecond,
		Gamma: 0.9,
		Dt:    10 * powertcp.Microsecond,
		Beta:  12_500,
		Law:   powertcp.LawPower,
	}
	e1, e2 := s.Eigenvalues()
	eq, _ := s.Equilibrium()
	fmt.Printf("stable=%v w_e=%.0f q_e=%.0f\n", e1 < 0 && e2 < 0, eq.W, eq.Q)
	// Output: stable=true w_e=262500 q_e=12500
}

// ExampleNewTheta runs the standalone (no-INT) variant: only RTT
// timestamps feed the control law.
func ExampleNewTheta() {
	net := powertcp.Star(powertcp.StarConfig{
		Hosts:    2,
		HostRate: 25 * powertcp.Gbps,
		Opts: powertcp.NetOptions{
			Hosts: powertcp.Hosts(powertcp.HostConfig{BaseRTT: 10 * powertcp.Microsecond}),
		},
	})
	src, dst := net.TransportHost(0), net.TransportHost(1)
	f := src.StartFlow(net.NextFlowID(), dst.ID(), 200_000, powertcp.NewTheta(powertcp.Config{}), 0)
	net.Eng.Run()
	fmt.Printf("done=%v\n", f.Done)
	// Output: done=true
}
