// Command powervet is the repo's determinism and hot-path linter: it
// runs the internal/analysis suite (detrange, simclock, pooluse,
// resultorder — see that package's documentation for what each proves)
// over the simulation-path packages and exits non-zero on any
// unsuppressed finding. CI runs it as a hard gate.
//
// Usage:
//
//	go run ./cmd/powervet ./...          # lint the whole module
//	go run ./cmd/powervet ./internal/sim # one package
//	go run ./cmd/powervet -list          # describe the analyzers
//	go run ./cmd/powervet -v ./...       # also list justified suppressions
//
// Packages outside the simulation path (examples, excluded internal
// packages such as livenet) are skipped; the skip reasons are part of
// internal/analysis.ExcludedPackages and printed under -v. A finding is
// suppressed in source with a `//powervet:<directive> <justification>`
// comment on or directly above the flagged line; the justification is
// mandatory and suppressed sites are counted in the summary, so the
// tree cannot accumulate unexplained escapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	verbose := flag.Bool("v", false, "list skipped packages and justified suppressions")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: powervet [-list] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n%13ssuppress with //powervet:%s <reason>\n", a.Name, a.Doc, "", a.Directive)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.GoList(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	loader := analysis.NewLoader()
	var findings, suppressed int
	for _, lp := range pkgs {
		analyzers := analysis.AnalyzersFor(lp.ImportPath)
		if len(analyzers) == 0 {
			if *verbose {
				fmt.Printf("# skip %s%s\n", lp.ImportPath, skipReason(lp.ImportPath))
			}
			continue
		}
		pkg, err := loader.Load(lp.ImportPath, lp.Dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, a := range analyzers {
			for _, d := range analysis.Run(a, pkg) {
				if d.Suppressed {
					suppressed++
					if *verbose {
						fmt.Printf("# suppressed %s: %s — justification: %s\n", d.Analyzer, d.String(), d.Reason)
					}
					continue
				}
				findings++
				fmt.Println(d.String())
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "powervet: %d finding(s)\n", findings)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("# powervet clean: %d package(s), %d justified suppression(s)\n", len(pkgs), suppressed)
	}
}

// skipReason renders the documented exclusion reason for an internal
// package, or a generic note for everything else out of scope.
func skipReason(importPath string) string {
	if rel, ok := strings.CutPrefix(importPath, "repro/internal/"); ok {
		if reason, ok := analysis.ExcludedPackages[rel]; ok {
			return " (excluded: " + reason + ")"
		}
	}
	return " (not a simulation-path package)"
}
