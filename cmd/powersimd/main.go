// Command powersimd serves simulations over HTTP: POST a scenario Spec
// (the canonical JSON form of internal/scenario) and get back a Result
// envelope. Identical submissions — same canonical spec, seed, and
// partition count — are answered from a content-addressed cache with a
// byte-identical envelope, which simulation determinism makes safe.
//
// Every run executes under a guard.Supervisor: event/sim-time/live-pool
// budgets trip deterministically, livelocks and panics come back as
// typed JSON errors with replayable repro bundles, and one bad request
// can never wedge or kill the daemon. Admission is bounded: beyond
// -workers running and -queue waiting submissions, requests are shed
// with 429 and a Retry-After hint.
//
// Wall-clock policy lives HERE, not in the sim path: HTTP read/write
// timeouts, the shutdown grace period, and Retry-After are this
// binary's concern, while the budgets guard enforces are pure sim-time
// quantities.
//
//	powersimd -addr :8080 -cache /var/cache/powersim -max-events 50000000
//	curl -s -XPOST localhost:8080/v1/run?parts=4 -d @spec.json
//	curl -s localhost:8080/v1/stats
//
// SIGTERM/SIGINT drain gracefully: admission stops (503), in-flight
// runs finish, the cache index is flushed, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/serve"
	"repro/internal/sim"
)

var (
	addrFlag    = flag.String("addr", ":8080", "listen address")
	workersFlag = flag.Int("workers", 2, "concurrent simulation runs")
	queueFlag   = flag.Int("queue", 8, "submissions allowed to wait beyond the running ones")
	cacheFlag   = flag.String("cache", "", "result cache directory (empty = in-memory only)")
	reproFlag   = flag.String("repro", "", "repro bundle directory for failed runs (empty = none)")
	maxEvents   = flag.Uint64("max-events", 100_000_000, "per-run event budget (0 = unlimited)")
	maxSimUS    = flag.Int64("max-sim-us", 0, "per-run simulated-time budget in µs (0 = unlimited)")
	maxLive     = flag.Uint64("max-live-packets", 0, "per-run live pooled-packet budget (0 = unlimited)")
	retryAfter  = flag.Int("retry-after", 2, "Retry-After hint in seconds for shed requests")
	graceFlag   = flag.Duration("grace", 30*time.Second, "shutdown grace period after drain")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powersimd:", err)
		os.Exit(1)
	}
}

func run() error {
	srv, err := serve.New(serve.Config{
		Workers:       *workersFlag,
		Queue:         *queueFlag,
		RetryAfterSec: *retryAfter,
		CacheDir:      *cacheFlag,
		ReproDir:      *reproFlag,
		Budget: guard.Budget{
			MaxEvents:      *maxEvents,
			MaxSimTime:     sim.Duration(*maxSimUS) * sim.Microsecond,
			MaxLivePackets: *maxLive,
		},
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              *addrFlag,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// No WriteTimeout: a cold run legitimately takes as long as its
		// budget allows; the event budget is the real bound.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("powersimd listening on %s (workers=%d queue=%d cache=%q)",
		*addrFlag, *workersFlag, *queueFlag, *cacheFlag)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("powersimd draining")
	if err := srv.Drain(); err != nil {
		log.Printf("powersimd: cache index flush failed: %v", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *graceFlag)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	log.Printf("powersimd stopped")
	return nil
}
