// Command sweep reproduces the parameter study behind the paper's γ=0.9
// recommendation (§3.3): it sweeps the EWMA weight over scenarios that
// stress both of γ's failure modes — reaction speed (incast) and noise
// sensitivity (steady websearch load) — and prints the trade-off table.
//
//	sweep            # γ ∈ {0.3 … 1.0} over incast + fairness + websearch
//	sweep -quick     # skip the websearch column (seconds instead of minutes)
package main

import (
	"flag"
	"fmt"

	"repro/internal/exp"
	"repro/internal/sim"
)

var (
	quickFlag = flag.Bool("quick", false, "skip the websearch column")
	seedFlag  = flag.Int64("seed", 1, "RNG seed")
)

func main() {
	flag.Parse()
	gammas := []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0}

	fmt.Println("PowerTCP γ sweep — reaction speed vs noise sensitivity")
	header := fmt.Sprintf("%-6s %14s %14s %12s %8s", "γ",
		"incast peak", "incast tail", "goodput", "jain")
	if !*quickFlag {
		header += fmt.Sprintf(" %12s %12s", "ws short", "ws long")
	}
	fmt.Println(header)

	for _, g := range gammas {
		scheme := exp.WithGamma(exp.PowerTCP, g)
		ic := exp.RunIncastWith(scheme, exp.IncastOptions{
			FanIn: 16, Window: 3 * sim.Millisecond, Seed: *seedFlag,
		})
		fr := exp.RunFairness(exp.FairnessOptions{
			Scheme: exp.PowerTCP, Seed: *seedFlag,
			Window: 6 * sim.Millisecond,
		})
		row := fmt.Sprintf("%-6.2f %12.0fKB %12.1fKB %10.1fG %8.3f",
			g, ic.PeakQueueKB, ic.TailMeanQueueKB, ic.AvgGoodputGbps, fr.JainAvg)
		if !*quickFlag {
			ws := exp.RunWebSearchWith(scheme, exp.WebSearchOptions{
				Load: 0.6, Seed: *seedFlag,
				Duration: 8 * sim.Millisecond, Drain: 4 * sim.Millisecond,
			})
			row += fmt.Sprintf(" %12.1f %12.1f", ws.ShortP999, ws.LongP999)
		}
		fmt.Println(row)
	}
	fmt.Println("\nLow γ reacts slowly (incast queue persists); γ=1 trusts every")
	fmt.Println("noisy sample (jittery windows under load). γ≈0.9 is the paper's pick.")
}
