// Command sweep reproduces the parameter study behind the paper's γ=0.9
// recommendation (§3.3): it sweeps the EWMA weight over scenarios that
// stress both of γ's failure modes — reaction speed (incast) and noise
// sensitivity (steady websearch load) — and prints the trade-off table.
//
// The whole grid is one experiment suite executed concurrently over a
// worker pool; every column of a row runs under the same swept γ (the
// previous one-off runners left fairness and websearch at the default).
//
//	sweep            # γ ∈ {0.3 … 1.0} over incast + fairness + websearch
//	sweep -quick     # skip the websearch column (seconds instead of minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/sim"
)

var (
	quickFlag   = flag.Bool("quick", false, "skip the websearch column")
	seedFlag    = flag.Int64("seed", 1, "RNG seed")
	workersFlag = flag.Int("workers", 0, "suite worker pool size (0 = GOMAXPROCS)")
)

func main() {
	flag.Parse()
	gammas := []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0}

	// One suite: every γ × every scenario column, all under the swept γ.
	var specs []exp.Spec
	perRow := 2
	if !*quickFlag {
		perRow = 3
	}
	for _, g := range gammas {
		gamma := exp.WithSchemeOptions(exp.Gamma(g))
		label := exp.WithLabel(fmt.Sprintf("gamma=%.2f", g))
		specs = append(specs,
			exp.NewSpec("incast", exp.PowerTCP, gamma, label,
				exp.WithFanIn(16), exp.WithWindow(3*sim.Millisecond), exp.WithSeed(*seedFlag)),
			exp.NewSpec("fairness", exp.PowerTCP, gamma, label,
				exp.WithWindow(6*sim.Millisecond), exp.WithSeed(*seedFlag)),
		)
		if !*quickFlag {
			specs = append(specs,
				exp.NewSpec("websearch", exp.PowerTCP, gamma, label,
					exp.WithLoad(0.6), exp.WithSeed(*seedFlag),
					exp.WithDuration(8*sim.Millisecond), exp.WithDrain(4*sim.Millisecond)))
		}
	}

	suite := exp.Suite{Specs: specs, Workers: *workersFlag}
	results, err := suite.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("PowerTCP γ sweep — reaction speed vs noise sensitivity")
	header := fmt.Sprintf("%-6s %14s %14s %12s %8s", "γ",
		"incast peak", "incast tail", "goodput", "jain")
	if !*quickFlag {
		header += fmt.Sprintf(" %12s %12s", "ws short", "ws long")
	}
	fmt.Println(header)

	for i, g := range gammas {
		ic := results[i*perRow].Raw.(*exp.IncastResult)
		fr := results[i*perRow+1].Raw.(*exp.FairnessResult)
		row := fmt.Sprintf("%-6.2f %12.0fKB %12.1fKB %10.1fG %8.3f",
			g, ic.PeakQueueKB, ic.TailMeanQueueKB, ic.AvgGoodputGbps, fr.JainAvg)
		if !*quickFlag {
			ws := results[i*perRow+2].Raw.(*exp.WebSearchResult)
			row += fmt.Sprintf(" %12.1f %12.1f", ws.ShortP999, ws.LongP999)
		}
		fmt.Println(row)
	}
	fmt.Println("\nLow γ reacts slowly (incast queue persists); γ=1 trusts every")
	fmt.Println("noisy sample (jittery windows under load). γ≈0.9 is the paper's pick.")
}
