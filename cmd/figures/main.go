// Command figures regenerates the data behind every figure of the
// paper's evaluation. Output is tab-separated with '#' comment headers,
// one block per figure panel, suitable for gnuplot/matplotlib.
//
// Each figure builds its panels as experiment specs and executes them as
// one suite over a GOMAXPROCS-sized worker pool; rendering then walks
// the results in panel order, so the output is identical to a serial run
// (every simulation owns an isolated engine and is deterministic per
// seed).
//
// Usage:
//
//	figures -fig 4            # one figure (2,3,4,5,6,7,8,9,mp,fluid,theory)
//	figures -fig fluid        # the fluid-model artifacts (2a–c + 3)
//	figures -fig all          # everything, runs across all cores
//	figures -fig 6 -full      # paper-scale topology (much slower)
//	figures -workers 4        # cap the worker pool
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/sim"
	"repro/internal/units"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate: 2,3,4,5,6,7,8,9,mp,fluid,theory,all")
	fullFlag    = flag.Bool("full", false, "paper-scale topology (256 servers / 25 ToRs); slow")
	seedFlag    = flag.Int64("seed", 1, "base RNG seed")
	workersFlag = flag.Int("workers", 0, "suite worker pool size (0 = GOMAXPROCS)")
)

func main() {
	flag.Parse()
	switch *figFlag {
	case "2":
		fig2()
	case "3":
		fig3()
	case "4":
		fig4()
	case "5":
		fig5()
	case "6":
		fig6()
	case "7":
		fig7()
	case "8":
		fig8()
	case "9":
		fig9()
	case "mp":
		figMultipath()
	case "fluid":
		// The fluid-model artifacts as one unit: the §2 response
		// surfaces (2a–c) and the phase-plot trajectories (Fig 3) — the
		// same internal/fluid laws the hybrid co-simulation integrates
		// per link.
		fig2()
		fig3()
	case "theory":
		theory()
	case "all":
		fig2()
		fig3()
		fig4()
		fig5()
		fig6()
		fig7()
		fig8()
		fig9()
		figMultipath()
		theory()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

// runSuite executes the specs over the worker pool and dies loudly on
// misconfigured panels.
func runSuite(specs []exp.Spec) []*exp.Result {
	suite := exp.Suite{Specs: specs, Workers: *workersFlag}
	results, err := suite.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	return results
}

// serversPerTor picks the fat-tree scale.
func serversPerTor() int {
	if *fullFlag {
		return 32 // 256 servers, the paper's §4.1 fabric
	}
	return 8
}

func rdcnScale() (tors, servers, weeks int) {
	if *fullFlag {
		return 25, 10, 4
	}
	return 16, 4, 3
}

func sys(law fluid.Law) *fluid.System {
	return &fluid.System{
		B: 100 * units.Gbps, Tau: 20 * sim.Microsecond,
		Gamma: 0.9, Dt: 10 * sim.Microsecond, Beta: 12_500, Law: law,
	}
}

func fig2() {
	s := sys(fluid.Voltage)
	b := (100 * units.Gbps).BytesPerSec()
	fmt.Println("# Figure 2a: multiplicative decrease vs queue buildup rate (q=25 pkts)")
	fmt.Println("# rate_x_bandwidth\tvoltage_md\tcurrent_md\tpower_md")
	q := 25.0 * 1048
	for r := 0.0; r <= 8; r += 0.5 {
		fmt.Printf("%.1f\t%.3f\t%.3f\t%.3f\n", r,
			sys(fluid.Voltage).MDResponse(q, r*b),
			sys(fluid.Current).MDResponse(q, r*b),
			sys(fluid.Power).MDResponse(q, r*b))
	}
	fmt.Println("\n# Figure 2b: multiplicative decrease vs queue length (q̇ = 2b)")
	fmt.Println("# queue_pkts\tvoltage_md\tcurrent_md\tpower_md")
	for pkts := 0; pkts <= 60; pkts += 4 {
		q := float64(pkts) * 1048
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f\n", pkts,
			sys(fluid.Voltage).MDResponse(q, 2*b),
			sys(fluid.Current).MDResponse(q, 2*b),
			sys(fluid.Power).MDResponse(q, 2*b))
	}
	fmt.Println("\n# Figure 2c: the three indistinguishable cases")
	fmt.Println("# case\tvoltage_md\tcurrent_md\tpower_md")
	for _, c := range s.Fig2cCases() {
		fmt.Printf("%s\t%.2f\t%.2f\t%.2f\n", c.Name, c.VoltageMD, c.CurrentMD, c.PowerMD)
	}
	fmt.Println()
}

func fig3() {
	fmt.Println("# Figure 3: phase-plot trajectories (window vs inflight, packets)")
	fmt.Println("# law\ttraj\tstep\twindow_pkts\tinflight_pkts")
	inits := []fluid.State{
		{W: 20 * 1048, Q: 0},
		{W: 500 * 1048, Q: 100 * 1048},
		{W: 1000 * 1048, Q: 300 * 1048},
		{W: 2000 * 1048, Q: 0},
	}
	for _, law := range []fluid.Law{fluid.Voltage, fluid.Current, fluid.Power} {
		s := sys(law)
		for ti, st0 := range inits {
			tr := s.Trajectory(st0, 2e-6, 1500)
			for i := 0; i < len(tr); i += 25 {
				fmt.Printf("%v\t%d\t%d\t%.1f\t%.1f\n", law, ti, i,
					tr[i].W/1048, s.Inflight(tr[i])/1048)
			}
		}
	}
	fmt.Println()
}

func fig4() {
	schemes := []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.Timely, exp.HPCC, exp.Homa}
	var specs []exp.Spec
	for _, fanIn := range []int{10, 255} {
		spt := serversPerTor()
		if fanIn >= 255 {
			spt = 32 // need 256 servers for the full-cluster incast
		}
		for _, sc := range schemes {
			specs = append(specs, exp.NewSpec("incast", sc,
				exp.WithFanIn(fanIn), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag)))
		}
	}
	results := runSuite(specs)
	for i, spec := range specs {
		r := results[i].Raw.(*exp.IncastResult)
		fmt.Printf("# Figure 4 (%d:1) %s: peak=%.0fKB end=%.0fKB avg=%.1fGbps done=%d/%d\n",
			spec.FanIn, r.Scheme, r.PeakQueueKB, r.EndQueueKB, r.AvgGoodputGbps, r.Completed, r.FanIn)
		fmt.Println("# time_ms\tthroughput_gbps\tqueue_kb")
		for k, p := range r.Points {
			if k%5 == 0 {
				fmt.Printf("%.3f\t%.2f\t%.1f\n",
					p.T.Seconds()*1e3, p.ThroughputGbps, p.QueueKB)
			}
		}
		fmt.Println()
	}
}

func fig5() {
	schemes := []string{exp.PowerTCP, exp.Homa, exp.ThetaPowerTCP, exp.Timely}
	var specs []exp.Spec
	for _, sc := range schemes {
		specs = append(specs, exp.NewSpec("fairness", sc, exp.WithSeed(*seedFlag)))
	}
	for _, res := range runSuite(specs) {
		r := res.Raw.(*exp.FairnessResult)
		fmt.Printf("# Figure 5 %s: Jain=%.3f\n", r.Scheme, r.JainAvg)
		fmt.Println("# time_ms\tflow1\tflow2\tflow3\tflow4 (Gbps)")
		for k := 0; k < len(r.T); k += 4 {
			fmt.Printf("%.3f", r.T[k].Seconds()*1e3)
			for i := range r.Per {
				fmt.Printf("\t%.2f", r.Per[i][k])
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func fig6() {
	loads := []float64{0.2, 0.6}
	var specs []exp.Spec
	for _, load := range loads {
		for _, sc := range exp.Schemes {
			specs = append(specs, exp.NewSpec("websearch", sc,
				exp.WithLoad(load), exp.WithServersPerTor(serversPerTor()), exp.WithSeed(*seedFlag)))
		}
	}
	results := runSuite(specs)
	i := 0
	for _, load := range loads {
		fmt.Printf("# Figure 6: 99.9p FCT slowdown by flow size, websearch at %.0f%% load\n", load*100)
		fmt.Println("# scheme\t≤5K\t≤20K\t≤50K\t≤100K\t≤400K\t≤800K\t≤5M\t≤30M")
		for range exp.Schemes {
			r := results[i].Raw.(*exp.WebSearchResult)
			i++
			fmt.Printf("%s", r.Scheme)
			for _, v := range r.Binned.Row(99.9) {
				fmt.Printf("\t%.1f", v)
			}
			fmt.Printf("\t# completed=%d/%d\n", r.Completed, r.Started)
		}
		fmt.Println()
	}
}

func fig7() {
	schemes := []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.HPCC}
	spt := serversPerTor()

	// Build every panel's specs up front and run them as ONE suite, so
	// stragglers in one sub-figure never idle the worker pool. The
	// printed blocks below slice the ordered results.
	var specs []exp.Spec

	// 7a/7b: load sweep.
	loads := []float64{0.2, 0.4, 0.6, 0.8}
	loadStart := len(specs)
	for _, load := range loads {
		for _, sc := range schemes {
			specs = append(specs, exp.NewSpec("websearch", sc,
				exp.WithLoad(load), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag)))
		}
	}

	// Request-rate and request-size sweeps (7c–7f). At bench scale the
	// simulated horizon is tens of ms, so the paper's 1–16 req/s maps to
	// proportionally higher rates for the same incasts-per-experiment.
	rates := []float64{250, 1000, 2000, 4000}
	if *fullFlag {
		rates = []float64{1, 4, 8, 16}
	}
	rateStart := len(specs)
	for _, rate := range rates {
		for _, sc := range schemes {
			specs = append(specs, exp.NewSpec("websearch", sc,
				exp.WithLoad(0.8), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag),
				exp.WithIncastOverlay(rate, 2<<20, 0)))
		}
	}

	sizes := []int64{1, 2, 4, 8}
	sizeStart := len(specs)
	for _, mb := range sizes {
		for _, sc := range schemes {
			specs = append(specs, exp.NewSpec("websearch", sc,
				exp.WithLoad(0.8), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag),
				exp.WithIncastOverlay(rates[1], mb<<20, 0)))
		}
	}

	bufStart := len(specs)
	for _, withIncast := range []bool{false, true} {
		for _, sc := range schemes {
			opts := []exp.Option{
				exp.WithLoad(0.8), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag),
				exp.WithBufferSampling(true),
			}
			if withIncast {
				opts = append(opts, exp.WithIncastOverlay(rates[len(rates)-1], 2<<20, 0),
					exp.WithLabel("incast"))
			}
			specs = append(specs, exp.NewSpec("websearch", sc, opts...))
		}
	}

	results := runSuite(specs)

	fmt.Println("# Figure 7a/7b: short & long flow 99.9p slowdown vs load")
	fmt.Println("# load\tscheme\tshort_p999\tlong_p999")
	for i := loadStart; i < rateStart; i++ {
		r := results[i].Raw.(*exp.WebSearchResult)
		fmt.Printf("%.1f\t%s\t%.2f\t%.2f\n", specs[i].Load, r.Scheme, r.ShortP999, r.LongP999)
	}

	fmt.Println("\n# Figure 7c/7d: websearch@80% + incast, sweep request rate (2MB requests)")
	fmt.Println("# req_per_s\tscheme\tshort_p999\tlong_p999")
	for i := rateStart; i < sizeStart; i++ {
		r := results[i].Raw.(*exp.WebSearchResult)
		fmt.Printf("%.0f\t%s\t%.2f\t%.2f\n", specs[i].IncastRate, r.Scheme, r.ShortP999, r.LongP999)
	}

	fmt.Println("\n# Figure 7e/7f: sweep request size at fixed rate")
	fmt.Println("# req_mb\tscheme\tshort_p999\tlong_p999")
	for i := sizeStart; i < bufStart; i++ {
		r := results[i].Raw.(*exp.WebSearchResult)
		fmt.Printf("%d\t%s\t%.2f\t%.2f\n", specs[i].IncastSize>>20, r.Scheme, r.ShortP999, r.LongP999)
	}

	fmt.Println("\n# Figure 7g/7h: buffer occupancy CDF at 80% load (+incast for 7h)")
	for i := bufStart; i < len(specs); i++ {
		r := results[i].Raw.(*exp.WebSearchResult)
		fmt.Printf("# %s incast=%v p99_buffer=%.0fB\n", r.Scheme, specs[i].IncastRate > 0, r.BufferP99)
		fmt.Println("# occupancy_kb\tcdf")
		for _, p := range r.BufferCDF {
			fmt.Printf("%.1f\t%.3f\n", p.V/1024, p.F)
		}
		fmt.Println()
	}
}

func fig8() {
	tors, servers, weeks := rdcnScale()
	schemes8a := []string{exp.PowerTCP, exp.HPCC, exp.ReTCP600, exp.ReTCP1800}
	var specs []exp.Spec
	for _, sc := range schemes8a {
		specs = append(specs, exp.NewSpec("rdcn", sc,
			exp.WithTors(tors), exp.WithServersPerTor(servers), exp.WithWeeks(weeks),
			exp.WithSeed(*seedFlag)))
	}
	rates := []units.BitRate{25 * units.Gbps, 50 * units.Gbps}
	schemes8b := []string{exp.ReTCP600, exp.ReTCP1800, exp.HPCC, exp.PowerTCP}
	for _, pg := range rates {
		for _, sc := range schemes8b {
			specs = append(specs, exp.NewSpec("rdcn", sc,
				exp.WithTors(tors), exp.WithServersPerTor(servers), exp.WithWeeks(weeks),
				exp.WithPacketRate(pg), exp.WithSeed(*seedFlag)))
		}
	}
	results := runSuite(specs)

	fmt.Println("# Figure 8a: RDCN throughput & VOQ time series")
	for i := range schemes8a {
		r := results[i].Raw.(*exp.RDCNResult)
		fmt.Printf("# %s: circuit_util=%.2f tail_queuing=%.1fus avg=%.1fGbps\n",
			r.Scheme, r.CircuitUtilization, r.TailQueuingUs, r.AvgGoodputGbps)
		fmt.Println("# time_ms\tthroughput_gbps\tvoq_kb")
		for k := range r.T {
			if k%10 == 0 {
				fmt.Printf("%.3f\t%.2f\t%.1f\n",
					r.T[k].Seconds()*1e3, r.Throughput[k], r.VOQKB[k])
			}
		}
		fmt.Println()
	}
	fmt.Println("# Figure 8b: tail queuing latency vs packet bandwidth")
	fmt.Println("# pkt_gbps\tscheme\ttail_queuing_us\tcircuit_util")
	i := len(schemes8a)
	for _, pg := range rates {
		for range schemes8b {
			r := results[i].Raw.(*exp.RDCNResult)
			i++
			fmt.Printf("%d\t%s\t%.1f\t%.2f\n",
				pg/units.Gbps, r.Scheme, r.TailQueuingUs, r.CircuitUtilization)
		}
	}
	fmt.Println()
}

func fig9() {
	spt255 := serversPerTor()
	if *fullFlag {
		spt255 = 32
	}
	var specs []exp.Spec
	for oc := 1; oc <= 6; oc++ {
		sc := fmt.Sprintf("homa-oc%d", oc)
		specs = append(specs,
			exp.NewSpec("fairness", sc, exp.WithSeed(*seedFlag)),
			exp.NewSpec("incast", sc,
				exp.WithFanIn(10), exp.WithServersPerTor(serversPerTor()), exp.WithSeed(*seedFlag)),
			exp.NewSpec("incast", sc,
				exp.WithFanIn(spt255*8-2), exp.WithServersPerTor(spt255), exp.WithSeed(*seedFlag)),
		)
	}
	results := runSuite(specs)
	fmt.Println("# Figures 9-11: HOMA overcommitment sweep")
	fmt.Println("# oc\tjain\tincast10_peak_kb\tincast10_done\tincast255_peak_kb\tincast255_done")
	for oc := 1; oc <= 6; oc++ {
		f := results[(oc-1)*3].Raw.(*exp.FairnessResult)
		i10 := results[(oc-1)*3+1].Raw.(*exp.IncastResult)
		i255 := results[(oc-1)*3+2].Raw.(*exp.IncastResult)
		fmt.Printf("%d\t%.3f\t%.0f\t%d\t%.0f\t%d\n",
			oc, f.JainAvg, i10.PeakQueueKB, i10.Completed, i255.PeakQueueKB, i255.Completed)
	}
	fmt.Println()
}

// figMultipath renders the supplementary multipath & failure figure:
// the scenarios PR 3's routing control plane opened. Panel A is the
// permutation stress (hash imbalance on the fat tree), panel B the
// unequal-spine fabric (ECMP vs WCMP), panel C the mid-run link failure
// (per-scheme recovery).
func figMultipath() {
	schemes := []string{exp.PowerTCP, exp.HPCC, exp.Timely}
	spt := serversPerTor()

	var specs []exp.Spec
	permStart := len(specs)
	for _, routing := range []string{"single", "ecmp"} {
		for _, sc := range schemes {
			specs = append(specs, exp.NewSpec("permutation", sc,
				exp.WithRouting(routing), exp.WithServersPerTor(spt), exp.WithSeed(*seedFlag)))
		}
	}
	asymStart := len(specs)
	for _, routing := range []string{"single", "ecmp", "wecmp"} {
		for _, sc := range []string{exp.PowerTCP, exp.HPCC} {
			specs = append(specs, exp.NewSpec("asymmetry", sc,
				exp.WithRouting(routing), exp.WithSeed(*seedFlag)))
		}
	}
	failStart := len(specs)
	failSchemes := []string{exp.PowerTCP, exp.HPCC, exp.Timely, exp.Homa}
	for _, sc := range failSchemes {
		specs = append(specs, exp.NewSpec("failover", sc, exp.WithSeed(*seedFlag)))
	}
	results := runSuite(specs)

	fmt.Println("# Supplementary MP-A: host-permutation goodput fairness under hash imbalance")
	fmt.Println("# routing\tscheme\tjain\tavg_gbps\tmin_gbps\tuplinks_used\tuplink_imbalance")
	for i := permStart; i < asymStart; i++ {
		r := results[i].Raw.(*exp.PermutationResult)
		fmt.Printf("%s\t%s\t%.3f\t%.2f\t%.2f\t%d/%d\t%.2f\n",
			r.Routing, r.Scheme, r.Jain, results[i].Scalar("avg_goodput_gbps"),
			r.MinGbps, r.UplinksUsed, r.UplinksTotal, r.UplinkImbalance)
	}

	fmt.Println("\n# Supplementary MP-B: unequal spines (100G + 50G), ECMP vs WCMP")
	fmt.Println("# routing\tscheme\tefficiency\tjain\tspine_utils")
	for i := asymStart; i < failStart; i++ {
		r := results[i].Raw.(*exp.AsymmetryResult)
		fmt.Printf("%s\t%s\t%.3f\t%.3f", r.Routing, r.Scheme, r.Efficiency, r.Jain)
		for _, u := range r.SpineUtil {
			fmt.Printf("\t%.2f", u)
		}
		fmt.Println()
	}

	fmt.Println("\n# Supplementary MP-C: spine-link failure at 1ms, restore at 3ms")
	fmt.Println("# scheme\trecovery_us\tqueue_spike_kb\tlost_pkts\tpre_gbps\tpost_gbps")
	for i := failStart; i < len(specs); i++ {
		r := results[i].Raw.(*exp.FailoverResult)
		fmt.Printf("%s\t%.0f\t%.1f\t%d\t%.1f\t%.1f\n",
			r.Scheme, r.RecoveryUs, r.QueueSpikeKB, r.LostPackets, r.PreFailGbps, r.PostFailGbps)
	}
	for i := failStart; i < len(specs); i++ {
		r := results[i].Raw.(*exp.FailoverResult)
		fmt.Printf("\n# MP-C series %s\n# time_ms\tgoodput_gbps\tqueue_kb\n", r.Scheme)
		for k := range r.T {
			if k%10 == 0 {
				fmt.Printf("%.3f\t%.2f\t%.1f\n", r.T[k].Seconds()*1e3, r.Gbps[k], r.QueueKB[k])
			}
		}
	}
	fmt.Println()
}

func theory() {
	s := sys(fluid.Power)
	e1, e2 := s.Eigenvalues()
	fmt.Println("# Theorem 1 (stability): eigenvalues of the linearized system")
	fmt.Printf("lambda1=%.0f (−1/τ)\tlambda2=%.0f (−γ/δt)\tstable=%v\n",
		e1, e2, e1 < 0 && e2 < 0)
	tc := s.ConvergenceConstant(1e5)
	fmt.Println("# Theorem 2 (convergence): numeric time constant vs δt/γ")
	fmt.Printf("measured=%.3gs\tpredicted=%.3gs\n", tc, s.Dt.Seconds()/s.Gamma)
	eq, _ := s.Equilibrium()
	fmt.Printf("# Equilibrium: w_e=%.0fB (bτ+β̂), q_e=%.0fB (β̂)\n\n", eq.W, eq.Q)
}
