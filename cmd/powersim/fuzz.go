package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/fuzzlab"
	"repro/internal/scenario"
)

// runFuzz is the CLI face of internal/fuzzlab — replay and inspection
// outside `go test`.
//
//	powersim -fuzz -seed 7                 # one seed: generate, print, check
//	powersim -fuzz -seeds 200              # sweep 200 seeds from -seed
//	powersim -fuzz -deep -minutes 30       # sweep until the wall-clock budget
//	powersim -fuzz -replay repro.json      # re-check a pinned spec, emit its result
//
// Violating seeds are shrunk automatically; the minimal repro prints to
// stdout and, with -pin DIR, is written there ready to commit under
// internal/fuzzlab/testdata/corpus. Exit status 1 means findings.
func runFuzz() {
	if *replayFlag != "" {
		replaySpec(*replayFlag)
		return
	}

	n := *seedsFlag
	var stop func() bool
	if *deepFlag {
		// The deep sweep is budgeted by wall clock, not seed count; the
		// time policy lives here because fuzzlab itself is sim-path code
		// and takes no wall-clock readings.
		if !seedsSet() {
			n = math.MaxInt32
		}
		deadline := time.Now().Add(time.Duration(*minutesFlag * float64(time.Minute)))
		stop = func() bool { return time.Now().After(deadline) }
	}
	if !*deepFlag && n == 1 {
		// Single-seed inspection: show what the generator derives before
		// checking it.
		sp := fuzzlab.Generate(*seedFlag)
		os.Stdout.Write(fuzzlab.Canonical(&sp))
	}
	fmt.Fprintf(os.Stderr, "powersim: fuzzing %d seed(s) from %d\n", n, *seedFlag)
	rep := fuzzlab.Sweep(*seedFlag, n, fuzzlab.Options{}, stop, os.Stderr)
	fmt.Fprintf(os.Stderr, "powersim: %d seed(s) checked, %d generator error(s), %d finding(s)\n",
		rep.Checked, rep.GenErrors, len(rep.Findings))
	for i := range rep.Findings {
		f := &rep.Findings[i]
		for _, v := range f.Violations {
			fmt.Fprintf(os.Stderr, "seed %d: %s\n", f.Seed, v)
		}
		os.Stdout.Write(fuzzlab.Canonical(&f.Shrunk))
		if *pinFlag != "" {
			path, err := fuzzlab.WriteRepro(*pinFlag, &f.Shrunk)
			if err != nil {
				fmt.Fprintf(os.Stderr, "powersim: pinning repro: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "seed %d: repro pinned at %s\n", f.Seed, path)
		}
	}
	if len(rep.Findings) > 0 || rep.GenErrors > 0 {
		os.Exit(1)
	}
}

// replaySpec re-checks one pinned spec file through the full invariant
// battery and emits its serial Result in the selected format — the way
// to inspect what a corpus entry actually measures.
func replaySpec(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(2)
	}
	var sp fuzzlab.Spec
	if err := json.Unmarshal(b, &sp); err != nil {
		fmt.Fprintf(os.Stderr, "powersim: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	vs, err := fuzzlab.Check(&sp, fuzzlab.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(2)
	}
	sc, err := sp.Build(1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(2)
	}
	r, err := scenario.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(2)
	}
	emit(r)
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "powersim: VIOLATION %s\n", v)
	}
	if len(vs) > 0 {
		os.Exit(1)
	}
}

// seedsSet reports whether -seeds was given explicitly (the deep sweep
// otherwise ignores its default in favor of the time budget).
func seedsSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seeds" {
			set = true
		}
	})
	return set
}
