// Command powersim runs a single experiment scenario from flags and
// prints a human-readable summary — the quick way to poke at one
// configuration without regenerating whole figures.
//
// Examples:
//
//	powersim -exp incast -scheme powertcp -fanin 32
//	powersim -exp websearch -scheme hpcc -load 0.6 -servers 8
//	powersim -exp fairness -scheme homa
//	powersim -exp rdcn -scheme retcp-1800 -pktgbps 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

var (
	expFlag     = flag.String("exp", "incast", "experiment: incast, fairness, websearch, rdcn")
	schemeFlag  = flag.String("scheme", "powertcp", "CC scheme (powertcp, theta-powertcp, hpcc, timely, dcqcn, homa, homa-ocN, retcp-600, retcp-1800)")
	fanInFlag   = flag.Int("fanin", 10, "incast fan-in")
	loadFlag    = flag.Float64("load", 0.6, "websearch ToR-uplink load")
	serversFlag = flag.Int("servers", 8, "servers per ToR (32 = paper scale)")
	durFlag     = flag.Float64("ms", 0, "override experiment duration (milliseconds)")
	seedFlag    = flag.Int64("seed", 1, "RNG seed")
	pktGbps     = flag.Int64("pktgbps", 25, "RDCN packet-network bandwidth (Gbps)")
	icRateFlag  = flag.Float64("icrate", 0, "websearch incast request rate (req/s)")
	icSizeFlag  = flag.Int64("icmb", 2, "websearch incast request size (MB)")
)

func main() {
	flag.Parse()
	switch *expFlag {
	case "incast":
		o := exp.IncastOptions{
			Scheme: *schemeFlag, FanIn: *fanInFlag,
			ServersPerTor: *serversFlag, Seed: *seedFlag,
		}
		if *durFlag > 0 {
			o.Window = sim.Millis(*durFlag)
		}
		r := exp.RunIncast(o)
		fmt.Printf("incast %d:1 with %s\n", r.FanIn, r.Scheme)
		fmt.Printf("  receiver goodput : %.2f Gbps (window average)\n", r.AvgGoodputGbps)
		fmt.Printf("  peak queue       : %.1f KB\n", r.PeakQueueKB)
		fmt.Printf("  end-of-run queue : %.1f KB\n", r.EndQueueKB)
		fmt.Printf("  incast flows done: %d/%d\n", r.Completed, r.FanIn)

	case "fairness":
		o := exp.FairnessOptions{Scheme: *schemeFlag, Seed: *seedFlag}
		if *durFlag > 0 {
			o.Window = sim.Millis(*durFlag)
		}
		r := exp.RunFairness(o)
		fmt.Printf("fairness (4 staggered flows) with %s\n", r.Scheme)
		fmt.Printf("  mean Jain index  : %.3f\n", r.JainAvg)
		if n := len(r.T); n > 0 {
			k := n / 2
			fmt.Printf("  shares at %v:", r.T[k])
			for i := range r.Per {
				fmt.Printf(" %.1fG", r.Per[i][k])
			}
			fmt.Println()
		}

	case "websearch":
		o := exp.WebSearchOptions{
			Scheme: *schemeFlag, Load: *loadFlag,
			ServersPerTor: *serversFlag, Seed: *seedFlag,
			IncastRate: *icRateFlag, IncastSize: *icSizeFlag << 20,
			SampleBuffers: true,
		}
		if *durFlag > 0 {
			o.Duration = sim.Millis(*durFlag)
		}
		r := exp.RunWebSearch(o)
		fmt.Printf("websearch at %.0f%% load with %s (%d/%d flows completed)\n",
			r.Load*100, r.Scheme, r.Completed, r.Started)
		fmt.Printf("  99.9p slowdown  : short %.1f | medium %.1f | long %.1f\n",
			r.ShortP999, r.MediumP999, r.LongP999)
		fmt.Printf("  per-bin 99.9p   :")
		for i, v := range r.Binned.Row(99.9) {
			fmt.Printf(" %s:%.1f", stats.SizeLabel(stats.FlowSizeBins[i]), v)
		}
		fmt.Println()
		fmt.Printf("  p99 ToR buffer  : %.1f KB\n", r.BufferP99/1024)

	case "rdcn":
		o := exp.RDCNOptions{
			Scheme: *schemeFlag, Seed: *seedFlag,
			PacketRate: units.BitRate(*pktGbps) * units.Gbps,
		}
		if *serversFlag != 8 {
			o.ServersPerTor = *serversFlag
		}
		r := exp.RunRDCN(o)
		fmt.Printf("RDCN with %s (packet network %dG)\n", r.Scheme, *pktGbps)
		fmt.Printf("  circuit utilization : %.1f%%\n", r.CircuitUtilization*100)
		fmt.Printf("  tail queuing (p99)  : %.1f µs\n", r.TailQueuingUs)
		fmt.Printf("  mean goodput        : %.2f Gbps\n", r.AvgGoodputGbps)

	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}
