// Command powersim runs a single experiment from the registry — or a
// composed scenario — and prints a human-readable summary: the quick
// way to poke at one configuration without regenerating whole figures.
// Any registered experiment and scheme (including the homa-oc<N> and
// retcp-<µs> families) resolves by name; γ and DT-α ablations compose
// via flags. Specs are validated: a flag the chosen experiment does not
// consume is an error, not a silently ignored knob.
//
// The -scenario mode runs assemblies of the composable scenario API
// (topology × traffic × events × probes) that the flat experiment specs
// cannot express: mixed traffic-class schemes, an incast pulse during a
// failover, a mid-run load step. 'powersim -scenario list' names them.
//
// The -fuzz mode drives internal/fuzzlab outside `go test`: generate a
// scenario from a seed, run the invariant battery over it, sweep seed
// bands (time-budgeted with -deep), or -replay a pinned corpus spec.
//
// Examples:
//
//	powersim -exp incast -scheme powertcp -fanin 32
//	powersim -exp websearch -scheme hpcc -load 0.6 -servers 8
//	powersim -exp fairness -scheme homa-oc3
//	powersim -exp rdcn -scheme retcp-1800 -pktgbps 50
//	powersim -exp incast -scheme powertcp -gamma 0.5 -json
//	powersim -exp list
//	powersim -scenario incast-failover -scheme powertcp
//	powersim -scenario load-step -scheme dcqcn -json
//	powersim -fuzz -seed 7
//	powersim -fuzz -seed 1 -seeds 200
//	powersim -fuzz -deep -minutes 30 -pin /tmp/repros
//	powersim -replay internal/fuzzlab/testdata/corpus/drop-undercount.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/units"
)

var (
	expFlag      = flag.String("exp", "incast", "experiment name from the registry; 'list' prints all")
	scenarioFlag = flag.String("scenario", "", "run a composed scenario instead of a registry experiment; 'list' prints all")
	fidelityFlag = flag.String("fidelity", "", "background fidelity for scenarios that take it: packet (default) or fluid (hybrid co-simulation)")
	schemeFlag   = flag.String("scheme", "powertcp", "CC scheme (powertcp, theta-powertcp, hpcc, timely, dcqcn, swift, dctcp, reno, cubic, homa, homa-oc<N>, retcp-<µs>)")
	fanInFlag    = flag.Int("fanin", 0, "incast fan-in")
	loadFlag     = flag.Float64("load", 0, "websearch ToR-uplink load")
	serversFlag  = flag.Int("servers", 0, "servers per ToR (32 = paper scale)")
	durFlag      = flag.Float64("ms", 0, "override experiment duration (milliseconds)")
	seedFlag     = flag.Int64("seed", 1, "RNG seed")
	partsFlag    = flag.Int("parts", 0, "shard the fabric across N parallel engines (byte-identical results)")
	pktGbps      = flag.Int64("pktgbps", 0, "RDCN packet-network bandwidth (Gbps)")
	icRateFlag   = flag.Float64("icrate", 0, "websearch incast request rate (req/s)")
	icSizeFlag   = flag.Int64("icmb", 2, "websearch incast request size (MB)")
	gammaFlag    = flag.Float64("gamma", 0, "override PowerTCP-family γ (ablation)")
	alphaFlag    = flag.Float64("alpha", 0, "override the Dynamic-Thresholds α (ablation)")
	routeFlag    = flag.String("route", "", "multipath strategy: ecmp, single, wecmp (multipath lab)")
	failMsFlag   = flag.Float64("failms", 0, "failover: link failure time (milliseconds)")
	restoreMs    = flag.Float64("restorems", 0, "failover: link restore time (milliseconds; negative keeps it down)")
	reconvMs     = flag.Float64("reconvms", 0, "failover: control-plane reconvergence delay (milliseconds)")
	flowsFlag    = flag.Int("flows", 0, "flow count (fairness, failover)")
	jsonFlag     = flag.Bool("json", false, "emit the result envelope as JSON")
	tsvFlag      = flag.Bool("tsv", false, "emit the result envelope as TSV blocks")

	fuzzFlag    = flag.Bool("fuzz", false, "fuzz mode: generate scenarios from seeds and check every invariant (internal/fuzzlab)")
	deepFlag    = flag.Bool("deep", false, "fuzz: sweep seeds until the -minutes wall-clock budget instead of a fixed count")
	minutesFlag = flag.Float64("minutes", 10, "fuzz: wall-clock budget of a -deep sweep")
	seedsFlag   = flag.Int("seeds", 1, "fuzz: how many consecutive seeds to check, starting at -seed")
	replayFlag  = flag.String("replay", "", "fuzz: re-check a pinned spec JSON file and emit its result")
	pinFlag     = flag.String("pin", "", "fuzz: directory to write shrunk repros into (ready for testdata/corpus)")
)

func main() {
	flag.Parse()
	if *expFlag == "list" || *scenarioFlag == "list" {
		fmt.Printf("experiments: %s\n", strings.Join(exp.ExperimentNames(), ", "))
		fmt.Printf("scenarios  : %s\n", strings.Join(scenarioNames(), ", "))
		fmt.Printf("schemes    : %s (plus homa-oc<N>, retcp-<µs>)\n", strings.Join(exp.SchemeNames(), ", "))
		return
	}

	if *fuzzFlag || *replayFlag != "" {
		// Fuzz mode is self-contained: the generator derives everything
		// from the seed, so experiment knobs cannot apply.
		allowed := map[string]bool{
			"fuzz": true, "deep": true, "minutes": true, "seeds": true,
			"seed": true, "replay": true, "pin": true, "json": true, "tsv": true,
		}
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "powersim: fuzz mode does not consume %s (specs derive from the seed alone)\n",
				strings.Join(stray, ", "))
			os.Exit(2)
		}
		runFuzz()
		return
	}

	if *scenarioFlag != "" {
		// Composed scenarios carry their whole configuration; the same
		// no-silently-ignored-knobs rule as spec validation applies to
		// the experiment flags.
		allowed := map[string]bool{"scenario": true, "scheme": true, "seed": true, "json": true, "tsv": true}
		if scenarioTakesFidelity(*scenarioFlag) {
			allowed["fidelity"] = true
		}
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "powersim: scenario %q does not consume %s (scenarios are fully self-configured)\n",
				*scenarioFlag, strings.Join(stray, ", "))
			os.Exit(2)
		}
		r, err := runScenario(*scenarioFlag, *schemeFlag, *seedFlag, *fidelityFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(2)
		}
		emit(r)
		return
	}

	opts := []exp.Option{exp.WithSeed(*seedFlag)}
	if *fanInFlag > 0 {
		opts = append(opts, exp.WithFanIn(*fanInFlag))
	}
	if *loadFlag > 0 {
		opts = append(opts, exp.WithLoad(*loadFlag))
	}
	if *serversFlag > 0 {
		opts = append(opts, exp.WithServersPerTor(*serversFlag))
	}
	if *partsFlag > 0 {
		opts = append(opts, exp.WithPartitions(*partsFlag))
	}
	if *durFlag > 0 {
		// The relevant horizon differs per experiment; consult the
		// registry so validation only sees the knob the experiment reads.
		e, err := exp.ExperimentByName(*expFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(2)
		}
		if e.Accepts(exp.FieldWindow) {
			opts = append(opts, exp.WithWindow(sim.Millis(*durFlag)))
		}
		if e.Accepts(exp.FieldDuration) {
			opts = append(opts, exp.WithDuration(sim.Millis(*durFlag)))
		}
	}
	if *pktGbps > 0 {
		opts = append(opts, exp.WithPacketRate(units.BitRate(*pktGbps)*units.Gbps))
	}
	if *icRateFlag > 0 {
		opts = append(opts, exp.WithIncastOverlay(*icRateFlag, *icSizeFlag<<20, 0))
	}
	if *routeFlag != "" {
		opts = append(opts, exp.WithRouting(*routeFlag))
	}
	if *failMsFlag > 0 || *restoreMs != 0 {
		restore := sim.Millis(*restoreMs)
		if *restoreMs < 0 {
			restore = exp.KeepLinkDown
		}
		opts = append(opts, exp.WithFailure(sim.Millis(*failMsFlag), restore))
	}
	if *reconvMs > 0 {
		opts = append(opts, exp.WithReconverge(sim.Millis(*reconvMs)))
	}
	if *flowsFlag > 0 {
		opts = append(opts, exp.WithFlows(*flowsFlag))
	}
	if *expFlag == "websearch" {
		opts = append(opts, exp.WithBufferSampling(true))
	}
	var schemeOpts []exp.SchemeOption
	if *gammaFlag > 0 {
		schemeOpts = append(schemeOpts, exp.Gamma(*gammaFlag))
	}
	if *alphaFlag > 0 {
		schemeOpts = append(schemeOpts, exp.Alpha(*alphaFlag))
	}
	if len(schemeOpts) > 0 {
		opts = append(opts, exp.WithSchemeOptions(schemeOpts...))
	}

	r, err := exp.Run(exp.NewSpec(*expFlag, *schemeFlag, opts...))
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(2)
	}
	emit(r)
}

// emit prints one result envelope in the selected format.
func emit(r *exp.Result) {
	switch {
	case *jsonFlag:
		if err := r.EncodeJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(1)
		}
	case *tsvFlag:
		if err := r.EncodeTSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("%s with %s (seed %d)\n", r.Experiment, r.Scheme, r.Seed)
		width := 0
		for _, name := range r.ScalarNames() {
			if len(name) > width {
				width = len(name)
			}
		}
		for _, name := range r.ScalarNames() {
			fmt.Printf("  %-*s : %g\n", width, name, r.Scalar(name))
		}
		for _, s := range r.Series {
			fmt.Printf("  series %s: %d samples\n", s.Name, len(s.Points))
		}
	}
}
