package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// Composed scenarios the flat Spec could not express: mixed
// traffic-class schemes, an incast pulse landing inside a failover
// window, and a mid-run load step. Each is a plain scenario.Scenario
// value — no runner files — selected with -scenario <name>.
var composedScenarios = map[string]struct {
	about string
	// takesFidelity marks scenarios whose background honors -fidelity;
	// the flag is rejected on any other (no silently ignored knobs).
	takesFidelity bool
	build         func(scheme scenario.Scheme, seed int64, fidelity scenario.Fidelity) scenario.Scenario
}{
	"hybrid-websearch": {
		about:         "websearch Poisson background at -fidelity packet|fluid under packet-fidelity foreground flows",
		takesFidelity: true,
		build: func(scheme scenario.Scheme, seed int64, fidelity scenario.Fidelity) scenario.Scenario {
			// The hybrid showcase: the heavy websearch background can run
			// as an analytically integrated fluid aggregate (-fidelity
			// fluid) while the foreground transfers stay packet-accurate —
			// same spec otherwise, so the two fidelities are directly
			// comparable.
			bg := scenario.Traffic(scenario.PoissonLoad{Load: 0.5, Horizon: 4 * sim.Millisecond})
			if fidelity == scenario.Fluid {
				bg = scenario.WithFidelity(scenario.Fluid, bg)
			}
			return scenario.Scenario{
				Name: "hybrid-websearch", Scheme: scheme, Seed: seed,
				Topology: scenario.FatTreeTopology{ServersPerTor: 8},
				Traffic: []scenario.Traffic{
					bg,
					scenario.Flows{List: []scenario.FlowSpec{
						{Start: sim.Time(200 * sim.Microsecond), Src: scenario.RackStart(1), Dst: scenario.Host(0), Size: 1 << 20},
						{Start: sim.Time(500 * sim.Microsecond), Src: scenario.RackStart(3), Dst: scenario.RackHost(2, 1), Size: 300_000},
						{Start: sim.Time(sim.Millisecond), Src: scenario.RackStart(5), Dst: scenario.RackHost(4, 0), Size: 120_000},
					}},
				},
				Probes: []scenario.Probe{
					scenario.FCTProbe{},
					&scenario.GoodputProbe{Period: 50 * sim.Microsecond},
				},
				Until: 5 * sim.Millisecond,
			}
		},
	},
	"mixed-classes": {
		about: "websearch Poisson load under the base scheme + a Reno bulk class on the same fabric",
		build: func(scheme scenario.Scheme, seed int64, _ scenario.Fidelity) scenario.Scenario {
			return scenario.Scenario{
				Name: "mixed-classes", Scheme: scheme, Seed: seed,
				Topology: scenario.FatTreeTopology{ServersPerTor: 8},
				Traffic: []scenario.Traffic{
					scenario.PoissonLoad{Load: 0.3, Horizon: 5 * sim.Millisecond},
					scenario.WithScheme(scenario.Reno, scenario.Flows{List: []scenario.FlowSpec{
						{Src: scenario.RackStart(1), Dst: scenario.Host(0), Size: 8 << 20},
						{Src: scenario.RackStart(2), Dst: scenario.Host(1), Size: 8 << 20},
					}}),
				},
				Probes: []scenario.Probe{
					scenario.FCTProbe{},
					&scenario.GoodputProbe{Period: 50 * sim.Microsecond},
				},
				Until: 7 * sim.Millisecond,
			}
		},
	},
	"incast-failover": {
		about: "incast pulse arriving while a spine link is down and routing reconverges",
		build: func(scheme scenario.Scheme, seed int64, _ scenario.Fidelity) scenario.Scenario {
			return scenario.Scenario{
				Name: "incast-failover", Scheme: scheme, Seed: seed,
				Topology: scenario.LeafSpineTopology{Leaves: 3, Spines: 2, ServersPerLeaf: 8},
				Traffic: []scenario.Traffic{
					scenario.RackPairs{FromRack: scenario.RackStart(0), ToRack: scenario.RackStart(2), Count: 4},
					scenario.IncastPulse{
						At: 1200 * sim.Microsecond, Receiver: scenario.RackHost(2, 0),
						FanIn: 8, FlowSize: 500_000,
					},
				},
				Events: scenario.Timeline{
					Events: []scenario.Event{
						scenario.LinkFail{At: sim.Millisecond, A: scenario.Leaf(2), B: scenario.Spine(0)},
						scenario.LinkRestore{At: 3 * sim.Millisecond, A: scenario.Leaf(2), B: scenario.Spine(0)},
					},
					Reconverge: 200 * sim.Microsecond,
				},
				Probes: []scenario.Probe{
					&scenario.GoodputProbe{Period: 20 * sim.Microsecond},
					// The incast receiver's ToR downlink (port 0 faces server 0).
					&scenario.QueueProbe{Switch: scenario.Leaf(2), Port: 0, Period: 20 * sim.Microsecond},
					scenario.FCTProbe{},
				},
				Until: 5 * sim.Millisecond,
			}
		},
	},
	"load-step": {
		about: "websearch load stepping from 0.2 to 0.6 mid-run via an injected Poisson class",
		build: func(scheme scenario.Scheme, seed int64, _ scenario.Fidelity) scenario.Scenario {
			return scenario.Scenario{
				Name: "load-step", Scheme: scheme, Seed: seed,
				Topology: scenario.FatTreeTopology{ServersPerTor: 8},
				Traffic: []scenario.Traffic{
					scenario.PoissonLoad{Load: 0.2, Horizon: 8 * sim.Millisecond},
				},
				Events: scenario.Timeline{Events: []scenario.Event{
					scenario.InjectTraffic{At: 4 * sim.Millisecond, Traffic: scenario.PoissonLoad{
						Load: 0.4, Horizon: 4 * sim.Millisecond, SeedOffset: 2,
					}},
				}},
				Probes: []scenario.Probe{
					scenario.FCTProbe{},
					&scenario.GoodputProbe{Period: 100 * sim.Microsecond},
				},
				Until: 10 * sim.Millisecond,
			}
		},
	},
}

func scenarioNames() []string {
	names := make([]string, 0, len(composedScenarios))
	for n := range composedScenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// scenarioTakesFidelity reports whether the named scenario consumes the
// -fidelity flag.
func scenarioTakesFidelity(name string) bool {
	return composedScenarios[name].takesFidelity
}

// runScenario resolves and executes one composed scenario.
func runScenario(name, schemeName string, seed int64, fidelity string) (*scenario.Result, error) {
	entry, ok := composedScenarios[name]
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(scenarioNames(), ", "))
	}
	var fd scenario.Fidelity
	switch fidelity {
	case "", "packet":
		fd = scenario.Packet
	case "fluid":
		fd = scenario.Fluid
	default:
		return nil, fmt.Errorf("unknown fidelity %q (packet or fluid)", fidelity)
	}
	scheme, err := scenario.ResolveScheme(schemeName)
	if err != nil {
		return nil, err
	}
	return scenario.Run(entry.build(scheme, seed, fd))
}
