// Command bench is the tracked performance harness: it runs the
// simulator's core benchmarks via testing.Benchmark, reports wall-clock,
// events/sec and allocations, and writes a BENCH_<n>.json snapshot so the
// repository records its performance trajectory PR over PR (see PERF.md).
//
// Usage:
//
//	go run ./cmd/bench                        # run and write BENCH_8.json
//	go run ./cmd/bench -o out.json            # write elsewhere
//	go run ./cmd/bench -list                  # print the benchmark set
//	go run ./cmd/bench -compare BENCH_5.json  # fail on >15%% events/sec regression
//	go run ./cmd/bench -gate -compare ...     # gate benchmarks only (CI smoke)
//	go run ./cmd/bench -gate -scale ...       # smoke plus the partitioned scale pair
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Measurement is one benchmark's recorded result.
type Measurement struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerSec is discrete events executed per wall-clock second
	// (0 for benchmarks without an engine run).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// AllocsPerEvent normalizes allocation churn by simulation work.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
	// SpeedupVsSerialX compares a partitioned scale measurement's
	// events/sec to the same fabric at 1 partition (scale benchmarks
	// only).
	SpeedupVsSerialX float64 `json:"speedup_vs_serial_x,omitempty"`
	// SpeedupVsPacketX compares the hybrid (fluid-background) run's
	// wall-clock to the identical all-packet scenario
	// (Scale_HybridWebsearch only).
	SpeedupVsPacketX float64 `json:"speedup_vs_packet_x,omitempty"`
	// RequestsPerSec and CacheHitRate are the powersimd serving smoke:
	// HTTP submissions answered per second over a repeated figure
	// workload, and the fraction answered from the result cache.
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
}

// Baseline is the pre-optimization record a measurement is compared to.
type Baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Comparison pairs a measurement with its recorded baseline.
type Comparison struct {
	Measurement
	Before       *Baseline `json:"before,omitempty"`
	SpeedupX     float64   `json:"speedup_x,omitempty"`
	AllocsRatioX float64   `json:"allocs_reduction_x,omitempty"`
}

// Snapshot is the file format of BENCH_<n>.json.
type Snapshot struct {
	PR      int          `json:"pr"`
	Note    string       `json:"note"`
	Results []Comparison `json:"results"`
}

// baselines are the previous PR's numbers (BENCH_5.json: composable
// scenario layer over the timing-wheel engine) measured on the
// reference machine. They are the "before" of this PR's canonical-order
// engine and parallel fabric, and stay fixed; reruns only refresh the
// "after". Scale_FatTree10k is new in BENCH_6 and has no "before".
var baselines = map[string]Baseline{
	"EngineScheduleRun":              {NsPerOp: 41_623, AllocsPerOp: 0},
	"SimulatorThroughput":            {NsPerOp: 7_318_300, AllocsPerOp: 2_203},
	"Fig4_Incast255/powertcp":        {NsPerOp: 56_711_308, AllocsPerOp: 13_007},
	"Fig4_Incast255/hpcc":            {NsPerOp: 58_522_883, AllocsPerOp: 11_126},
	"Fig6_WebSearch/powertcp-load20": {NsPerOp: 1_792_077_924, AllocsPerOp: 9_346},
	"MP_Permutation/ecmp":            {NsPerOp: 715_803_322, AllocsPerOp: 3_839},
	"MP_Failover/powertcp":           {NsPerOp: 49_910_055, AllocsPerOp: 654},
	"Scale_Incast1024":               {NsPerOp: 145_038_250, AllocsPerOp: 79_758},
	"Scenario_Mix":                   {NsPerOp: 56_747_412, AllocsPerOp: 2_299},
}

// spec benchmarks: each runs one experiment spec to completion per op.
var specBenches = []struct {
	name string
	spec exp.Spec
}{
	{"SimulatorThroughput", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(4), exp.WithWindow(sim.Millisecond), exp.WithSeed(1))},
	{"Fig4_Incast255/powertcp", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig4_Incast255/hpcc", exp.NewSpec("incast", exp.HPCC,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig6_WebSearch/powertcp-load20", exp.NewSpec("websearch", exp.PowerTCP,
		exp.WithLoad(0.2), exp.WithSeed(1))},
	// PR 3: the multipath lab rides the same zero-allocation forwarding
	// path — tracked here so an allocating ECMP hash or rebuild would
	// show up as an allocs/op regression.
	{"MP_Permutation/ecmp", exp.NewSpec("permutation", exp.PowerTCP,
		exp.WithRouting("ecmp"), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1))},
	{"MP_Failover/powertcp", exp.NewSpec("failover", exp.PowerTCP,
		exp.WithSeed(1))},
	// PR 4: the scale stress the binary heap handled poorly — a 1024:1
	// incast keeps tens of thousands of events pending, where heap pops
	// paid O(log n) and the timing wheel stays O(1).
	{"Scale_Incast1024", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(1024), exp.WithServersPerTor(160),
		exp.WithFlowSize(50_000), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1))},
}

// gateBenches are the benchmarks the CI regression gate watches: raw
// scheduler speed, end-to-end simulator throughput, and the composed
// scenario (absent from snapshots older than BENCH_5, where it is
// skipped with a notice).
var gateBenches = map[string]bool{
	"EngineScheduleRun":           true,
	"SimulatorThroughput":         true,
	"Scenario_Mix":                true,
	"Scale_HybridWebsearch/fluid": true,
}

// maxScenarioAllocsPerEvent is the absolute composition-overhead gate
// for Scenario_Mix: the generic scenario runner must ride the same
// zero-allocation hot path as the per-runner presets it replaced
// (BENCH_4-era experiment runs sit around 0.004 allocs/event).
const maxScenarioAllocsPerEvent = 0.02

// gateTolerance is the allowed events/sec regression before the gate
// fails (noise headroom for shared CI runners).
const gateTolerance = 0.15

// minHybridSpeedupX is the hybrid co-simulation's headline contract: the
// fluid-background run of the hybrid-websearch scenario must complete at
// least this many times faster (wall-clock) than the identical scenario
// with the background at packet fidelity.
const minHybridSpeedupX = 10.0

// hybridWebsearchBuild mirrors cmd/powersim's hybrid-websearch composed
// scenario: a websearch Poisson background — at fluid or packet fidelity
// — under three packet-fidelity foreground transfers on a 64-host fat
// tree.
func hybridWebsearchBuild(fluidBG bool) func(seed int64) (scenario.Scenario, error) {
	return func(seed int64) (scenario.Scenario, error) {
		scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
		if err != nil {
			return scenario.Scenario{}, err
		}
		bg := scenario.Traffic(scenario.PoissonLoad{Load: 0.5, Horizon: 4 * sim.Millisecond})
		if fluidBG {
			bg = scenario.WithFidelity(scenario.Fluid, bg)
		}
		return scenario.Scenario{
			Name: "hybrid-websearch", Scheme: scheme, Seed: seed,
			Topology: scenario.FatTreeTopology{ServersPerTor: 8},
			Traffic: []scenario.Traffic{
				bg,
				scenario.Flows{List: []scenario.FlowSpec{
					{Start: sim.Time(200 * sim.Microsecond), Src: scenario.RackStart(1), Dst: scenario.Host(0), Size: 1 << 20},
					{Start: sim.Time(500 * sim.Microsecond), Src: scenario.RackStart(3), Dst: scenario.RackHost(2, 1), Size: 300_000},
					{Start: sim.Time(sim.Millisecond), Src: scenario.RackStart(5), Dst: scenario.RackHost(4, 0), Size: 120_000},
				}},
			},
			Probes: []scenario.Probe{scenario.FCTProbe{}},
			Until:  5 * sim.Millisecond,
		}, nil
	}
}

// loadSnapshot reads a previous BENCH_<n>.json for -compare.
func loadSnapshot(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range snap.Results {
		out[r.Name] = r.EventsPerSec
	}
	return out, nil
}

// measureScenario benchmarks one composed scenario through the generic
// scenario runner, rebuilding the single-use value every iteration.
func measureScenario(name string, build func(seed int64) (scenario.Scenario, error)) (Measurement, error) {
	var steps float64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc, err := build(1)
			if err == nil {
				var r *scenario.Result
				if r, err = scenario.Run(sc); err == nil {
					steps = r.Scalar("engine_steps")
				}
			}
			if err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, runErr)
	}
	m := Measurement{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = steps / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / steps
	}
	return m, nil
}

func measureSpec(name string, spec exp.Spec) (Measurement, error) {
	var steps float64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := exp.Run(spec)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			steps = r.Scalar("engine_steps")
		}
	})
	if runErr != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, runErr)
	}
	m := Measurement{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = steps / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / steps
	}
	return m, nil
}

// scalePartCounts are the partition counts the Scale_FatTree10k family
// sweeps; the first (1 partition = serial) is the speedup denominator.
var scalePartCounts = []int{1, 2, 4, 8}

// measureScale benchmarks the partitioned drive phase at 10k-host
// scale: a 16-pod fat-tree (16 ToRs/pod × 40 servers = 10,240 hosts)
// under permutation traffic, sharded across parts engines. Topology
// build and flow launch run off the clock — the number is pure
// simulation throughput, so the ratio between partition counts is the
// conservative-sync fabric's scheduling win (on multi-core hosts;
// a single-core host only shows the per-partition cache locality).
// Output stays byte-identical across counts (the determinism suite
// pins it), which is what makes this sweep a fair comparison.
func measureScale(parts int) Measurement {
	var steps uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
			if err != nil {
				b.Fatal(err)
			}
			lab := scenario.NewConfiguredFatTreeLab(scheme, topo.FatTreeConfig{
				Pods: 16, TorsPerPod: 16, AggsPerPod: 8, Cores: 16,
				ServersPerTor: 40, Parts: parts,
			}, 1, nil)
			for src, dst := range workload.Permutation(len(lab.Net.Hosts), 1) {
				lab.Launch(workload.Flow{Src: src, Dst: dst, Size: lab.UnboundedSize()})
			}
			horizon := sim.Time(200 * sim.Microsecond)
			b.StartTimer()
			if lab.Net.PSim != nil {
				lab.Net.PSim.Run(horizon)
			} else {
				lab.Net.Eng.RunUntil(horizon)
			}
			b.StopTimer()
			steps = lab.Net.Steps()
			lab.Release()
			b.StartTimer()
		}
	})
	m := Measurement{
		Name:        fmt.Sprintf("Scale_FatTree10k/parts%d", parts),
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = float64(steps) / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / float64(steps)
	}
	return m
}

// serveSmokeRequests is the powersimd smoke workload: one figure spec
// submitted this many times. The first submission computes; the rest
// must come from the content-addressed cache.
const serveSmokeRequests = 64

// measureServe boots an in-process powersimd (serve.Server behind a
// real HTTP listener) and replays one experiment preset repeatedly —
// the serving pattern of figure regeneration, where every worker asks
// for the same runs. Reported as requests/sec over the wire plus the
// cache hit rate; ns/op is per request.
func measureServe() (Measurement, error) {
	srv, err := serve.New(serve.Config{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		return Measurement{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var sp *scenario.Spec
	for _, p := range scenario.SpecPresets() {
		if p.Name == "incast" {
			p := p
			sp = &p
		}
	}
	body, err := scenario.MarshalCanonical(sp)
	if err != nil {
		return Measurement{}, err
	}
	var requests, hits uint64
	submit := func() error {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("powersimd smoke: status %d", resp.StatusCode)
		}
		requests++
		if resp.Header.Get("X-Powersim-Cache") == "hit" {
			hits++
		}
		return nil
	}
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < serveSmokeRequests; j++ {
				if err := submit(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	})
	if runErr != nil {
		return Measurement{}, runErr
	}
	m := Measurement{
		Name:    "Powersimd_RepeatedFigure",
		NsPerOp: float64(br.NsPerOp()) / serveSmokeRequests,
	}
	if br.T > 0 {
		m.RequestsPerSec = float64(requests) / br.T.Seconds()
	}
	if requests > 0 {
		m.CacheHitRate = float64(hits) / float64(requests)
	}
	return m, nil
}

// measureEngine benchmarks the raw scheduler: schedule+run cycles with a
// pre-bound timer, the purest events/sec number the simulator has.
func measureEngine() Measurement {
	const batch = 1024
	var steps uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.New()
		fn := func() {}
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				eng.After(sim.Duration(j%97)*sim.Nanosecond, fn)
			}
			eng.Run()
		}
		steps = eng.Steps()
	})
	m := Measurement{
		Name:        "EngineScheduleRun",
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if br.N > 0 && br.T > 0 {
		m.EventsPerSec = float64(steps) / br.T.Seconds()
		m.AllocsPerEvent = float64(br.AllocsPerOp()) / batch
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_8.json", "output snapshot path")
	list := flag.Bool("list", false, "print the benchmark set and exit")
	compare := flag.String("compare", "", "previous BENCH_<n>.json: fail if events/sec regresses >15% on the gate benchmarks")
	gateOnly := flag.Bool("gate", false, "run only the regression-gate benchmarks (CI smoke)")
	scale := flag.Bool("scale", false, "with -gate, also run the partitioned 10k-host scale pair (parts 1 and 8)")
	flag.Parse()

	if *list {
		fmt.Println("EngineScheduleRun")
		for _, sb := range specBenches {
			fmt.Println(sb.name)
		}
		fmt.Println("Scale_HybridWebsearch/packet")
		fmt.Println("Scale_HybridWebsearch/fluid")
		fmt.Println("Powersimd_RepeatedFigure")
		for _, p := range scalePartCounts {
			fmt.Printf("Scale_FatTree10k/parts%d\n", p)
		}
		return
	}

	var prev map[string]float64
	if *compare != "" {
		var err error
		if prev, err = loadSnapshot(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	snap := Snapshot{
		PR: 10,
		Note: fmt.Sprintf("Hybrid packet/fluid co-simulation: the "+
			"Scale_HybridWebsearch pair runs one scenario twice — websearch "+
			"Poisson background at packet fidelity, then the same background "+
			"as a per-link fluid aggregate integrated by internal/hybrid "+
			"(RK4 exchange ticks on the engine clock) under unchanged "+
			"packet-fidelity foreground flows. speedup_vs_packet_x is the "+
			"wall-clock multiplier the fidelity knob buys; the bench fails "+
			"below %.0fx. The fluid leg joins the events/sec gate so the "+
			"coupler's per-tick cost cannot creep. Packet-only benches are "+
			"untouched by hybrid (the coupler is nil unless a component "+
			"opts in) — Scenario_Mix still carries the %.2f allocs/event "+
			"composition bound. Snapshot machine: GOMAXPROCS=%d, %d CPU(s). "+
			"Cross-snapshot ratios mix machine drift with code effects; "+
			"PERF.md records same-machine before/afters.",
			minHybridSpeedupX, maxScenarioAllocsPerEvent,
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}

	regressed := false
	checkGate := func(m Measurement) {
		if prev == nil || !gateBenches[m.Name] {
			return
		}
		before, ok := prev[m.Name]
		if !ok {
			// A benchmark newer than the comparison snapshot cannot be
			// gated against it; say so instead of failing the gate.
			fmt.Printf("gate skip: %s not in %s (new benchmark)\n", m.Name, *compare)
			return
		}
		if before <= 0 || m.EventsPerSec <= 0 {
			// A gate benchmark the snapshot cannot vouch for is a broken
			// gate, not a pass — fail loudly instead of silently checking
			// nothing.
			regressed = true
			fmt.Fprintf(os.Stderr, "bench: gate benchmark %s has no comparable events/sec (snapshot %.0f, measured %.0f) in %s\n",
				m.Name, before, m.EventsPerSec, *compare)
			return
		}
		if m.EventsPerSec < before*(1-gateTolerance) {
			regressed = true
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %s: %.0f events/sec vs %.0f in %s (-%.1f%%, gate is -%.0f%%)\n",
				m.Name, m.EventsPerSec, before, *compare,
				(1-m.EventsPerSec/before)*100, gateTolerance*100)
		} else {
			fmt.Printf("gate ok: %s %.0f events/sec vs %.0f (%+.1f%%)\n",
				m.Name, m.EventsPerSec, before, (m.EventsPerSec/before-1)*100)
		}
	}

	add := func(m Measurement) {
		checkGate(m)
		c := Comparison{Measurement: m}
		if b, ok := baselines[m.Name]; ok {
			bCopy := b
			c.Before = &bCopy
			if m.NsPerOp > 0 {
				c.SpeedupX = b.NsPerOp / m.NsPerOp
			}
			if m.AllocsPerOp > 0 {
				c.AllocsRatioX = b.AllocsPerOp / m.AllocsPerOp
			}
		}
		snap.Results = append(snap.Results, c)
		extra := ""
		switch {
		case c.Before != nil && c.AllocsRatioX > 0:
			extra = fmt.Sprintf("  [%.2fx faster, %.0fx fewer allocs]", c.SpeedupX, c.AllocsRatioX)
		case c.Before != nil:
			extra = fmt.Sprintf("  [%.2fx faster]", c.SpeedupX)
		}
		fmt.Printf("%-32s %12.0f ns/op %10.0f allocs/op %12.0f events/sec%s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.EventsPerSec, extra)
	}

	add(measureEngine())
	for _, sb := range specBenches {
		if *gateOnly && !gateBenches[sb.name] {
			continue
		}
		m, err := measureSpec(sb.name, sb.spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		add(m)
	}
	mix, err := measureScenario("Scenario_Mix", exp.ScenarioMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	add(mix)
	if mix.AllocsPerEvent > maxScenarioAllocsPerEvent {
		regressed = true
		fmt.Fprintf(os.Stderr, "bench: Scenario_Mix allocates %.4f allocs/event (gate: %.2f) — the composition layer left the zero-allocation hot path\n",
			mix.AllocsPerEvent, maxScenarioAllocsPerEvent)
	}
	// The hybrid pair: identical scenario, background at packet then
	// fluid fidelity. The packet run is the denominator of the headline
	// speedup contract; the fluid run is the gated benchmark.
	hybPacket, err := measureScenario("Scale_HybridWebsearch/packet", hybridWebsearchBuild(false))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	hybFluid, err := measureScenario("Scale_HybridWebsearch/fluid", hybridWebsearchBuild(true))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if hybFluid.NsPerOp > 0 {
		hybFluid.SpeedupVsPacketX = hybPacket.NsPerOp / hybFluid.NsPerOp
	}
	add(hybPacket)
	add(hybFluid)
	fmt.Printf("  hybrid: fluid background is %.1fx the all-packet wall-clock (contract: ≥%.0fx)\n",
		hybFluid.SpeedupVsPacketX, minHybridSpeedupX)
	if hybFluid.SpeedupVsPacketX < minHybridSpeedupX {
		regressed = true
		fmt.Fprintf(os.Stderr, "bench: Scale_HybridWebsearch speedup %.1fx below the %.0fx hybrid contract\n",
			hybFluid.SpeedupVsPacketX, minHybridSpeedupX)
	}
	if !*gateOnly {
		sm, err := measureServe()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		add(sm)
		fmt.Printf("  powersimd: %.0f requests/sec, %.1f%% cache hits\n",
			sm.RequestsPerSec, sm.CacheHitRate*100)
	}
	counts := scalePartCounts
	if *gateOnly {
		counts = nil
		if *scale {
			counts = []int{1, 8} // smoke: the speedup endpoints
		}
	}
	var serialScale float64
	for _, p := range counts {
		m := measureScale(p)
		if p == 1 {
			serialScale = m.EventsPerSec
		} else if serialScale > 0 {
			m.SpeedupVsSerialX = m.EventsPerSec / serialScale
		}
		add(m)
		if m.SpeedupVsSerialX > 0 {
			fmt.Printf("  scale: parts=%d is %.2fx the 1-partition run\n", p, m.SpeedupVsSerialX)
		}
	}
	if *gateOnly {
		if regressed {
			fmt.Fprintln(os.Stderr, "bench: events/sec regression gate failed")
			os.Exit(1)
		}
		return // smoke mode: no snapshot
	}

	// Write the snapshot before judging the gate: a failed gate with no
	// record of the numbers that failed it is strictly less useful than
	// one whose measurements landed on disk.
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if regressed {
		fmt.Fprintln(os.Stderr, "bench: events/sec regression gate failed")
		os.Exit(1)
	}
}
