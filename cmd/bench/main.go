// Command bench is the tracked performance harness: it runs the
// simulator's core benchmarks via testing.Benchmark, reports wall-clock,
// events/sec and allocations, and writes a BENCH_<n>.json snapshot so the
// repository records its performance trajectory PR over PR (see PERF.md).
//
// Usage:
//
//	go run ./cmd/bench                        # run and write BENCH_5.json
//	go run ./cmd/bench -o out.json            # write elsewhere
//	go run ./cmd/bench -list                  # print the benchmark set
//	go run ./cmd/bench -compare BENCH_4.json  # fail on >15%% events/sec regression
//	go run ./cmd/bench -gate -compare ...     # gate benchmarks only (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Measurement is one benchmark's recorded result.
type Measurement struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerSec is discrete events executed per wall-clock second
	// (0 for benchmarks without an engine run).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// AllocsPerEvent normalizes allocation churn by simulation work.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
}

// Baseline is the pre-optimization record a measurement is compared to.
type Baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Comparison pairs a measurement with its recorded baseline.
type Comparison struct {
	Measurement
	Before       *Baseline `json:"before,omitempty"`
	SpeedupX     float64   `json:"speedup_x,omitempty"`
	AllocsRatioX float64   `json:"allocs_reduction_x,omitempty"`
}

// Snapshot is the file format of BENCH_<n>.json.
type Snapshot struct {
	PR      int          `json:"pr"`
	Note    string       `json:"note"`
	Results []Comparison `json:"results"`
}

// baselines are the previous PR's numbers (BENCH_4.json: timing-wheel
// engine, per-runner experiment code) measured on the reference machine
// (Intel Xeon @ 2.10GHz, go1.24). They are the "before" of this PR's
// composable scenario layer and stay fixed; reruns only refresh the
// "after". Scenario_Mix is new in BENCH_5 and has no "before".
var baselines = map[string]Baseline{
	"EngineScheduleRun":              {NsPerOp: 44_692, AllocsPerOp: 0},
	"SimulatorThroughput":            {NsPerOp: 7_358_162, AllocsPerOp: 2_186},
	"Fig4_Incast255/powertcp":        {NsPerOp: 55_676_484, AllocsPerOp: 12_978},
	"Fig4_Incast255/hpcc":            {NsPerOp: 54_058_924, AllocsPerOp: 11_097},
	"Fig6_WebSearch/powertcp-load20": {NsPerOp: 1_739_652_891, AllocsPerOp: 9_325},
	"MP_Permutation/ecmp":            {NsPerOp: 767_013_586, AllocsPerOp: 3_823},
	"MP_Failover/powertcp":           {NsPerOp: 58_330_520, AllocsPerOp: 636},
	"Scale_Incast1024":               {NsPerOp: 150_874_732, AllocsPerOp: 79_727},
}

// spec benchmarks: each runs one experiment spec to completion per op.
var specBenches = []struct {
	name string
	spec exp.Spec
}{
	{"SimulatorThroughput", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(4), exp.WithWindow(sim.Millisecond), exp.WithSeed(1))},
	{"Fig4_Incast255/powertcp", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig4_Incast255/hpcc", exp.NewSpec("incast", exp.HPCC,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig6_WebSearch/powertcp-load20", exp.NewSpec("websearch", exp.PowerTCP,
		exp.WithLoad(0.2), exp.WithSeed(1))},
	// PR 3: the multipath lab rides the same zero-allocation forwarding
	// path — tracked here so an allocating ECMP hash or rebuild would
	// show up as an allocs/op regression.
	{"MP_Permutation/ecmp", exp.NewSpec("permutation", exp.PowerTCP,
		exp.WithRouting("ecmp"), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1))},
	{"MP_Failover/powertcp", exp.NewSpec("failover", exp.PowerTCP,
		exp.WithSeed(1))},
	// PR 4: the scale stress the binary heap handled poorly — a 1024:1
	// incast keeps tens of thousands of events pending, where heap pops
	// paid O(log n) and the timing wheel stays O(1).
	{"Scale_Incast1024", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(1024), exp.WithServersPerTor(160),
		exp.WithFlowSize(50_000), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1))},
}

// gateBenches are the benchmarks the CI regression gate watches: raw
// scheduler speed, end-to-end simulator throughput, and the composed
// scenario (absent from snapshots older than BENCH_5, where it is
// skipped with a notice).
var gateBenches = map[string]bool{
	"EngineScheduleRun":   true,
	"SimulatorThroughput": true,
	"Scenario_Mix":        true,
}

// maxScenarioAllocsPerEvent is the absolute composition-overhead gate
// for Scenario_Mix: the generic scenario runner must ride the same
// zero-allocation hot path as the per-runner presets it replaced
// (BENCH_4-era experiment runs sit around 0.004 allocs/event).
const maxScenarioAllocsPerEvent = 0.02

// gateTolerance is the allowed events/sec regression before the gate
// fails (noise headroom for shared CI runners).
const gateTolerance = 0.15

// loadSnapshot reads a previous BENCH_<n>.json for -compare.
func loadSnapshot(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range snap.Results {
		out[r.Name] = r.EventsPerSec
	}
	return out, nil
}

// measureScenario benchmarks one composed scenario through the generic
// scenario runner, rebuilding the single-use value every iteration.
func measureScenario(name string, build func(seed int64) (scenario.Scenario, error)) (Measurement, error) {
	var steps float64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc, err := build(1)
			if err == nil {
				var r *scenario.Result
				if r, err = scenario.Run(sc); err == nil {
					steps = r.Scalar("engine_steps")
				}
			}
			if err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, runErr)
	}
	m := Measurement{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = steps / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / steps
	}
	return m, nil
}

func measureSpec(name string, spec exp.Spec) (Measurement, error) {
	var steps float64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := exp.Run(spec)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			steps = r.Scalar("engine_steps")
		}
	})
	if runErr != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, runErr)
	}
	m := Measurement{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = steps / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / steps
	}
	return m, nil
}

// measureEngine benchmarks the raw scheduler: schedule+run cycles with a
// pre-bound timer, the purest events/sec number the simulator has.
func measureEngine() Measurement {
	const batch = 1024
	var steps uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.New()
		fn := func() {}
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				eng.After(sim.Duration(j%97)*sim.Nanosecond, fn)
			}
			eng.Run()
		}
		steps = eng.Steps()
	})
	m := Measurement{
		Name:        "EngineScheduleRun",
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if br.N > 0 && br.T > 0 {
		m.EventsPerSec = float64(steps) / br.T.Seconds()
		m.AllocsPerEvent = float64(br.AllocsPerOp()) / batch
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_5.json", "output snapshot path")
	list := flag.Bool("list", false, "print the benchmark set and exit")
	compare := flag.String("compare", "", "previous BENCH_<n>.json: fail if events/sec regresses >15% on the gate benchmarks")
	gateOnly := flag.Bool("gate", false, "run only the regression-gate benchmarks (CI smoke)")
	flag.Parse()

	if *list {
		fmt.Println("EngineScheduleRun")
		for _, sb := range specBenches {
			fmt.Println(sb.name)
		}
		return
	}

	var prev map[string]float64
	if *compare != "" {
		var err error
		if prev, err = loadSnapshot(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	snap := Snapshot{
		PR: 5,
		Note: "Composable scenario API: experiments rebuilt as declarative " +
			"Topology × Traffic × Events × Probes values over one generic " +
			"runner; byte-identical figure outputs. Scenario_Mix (websearch " +
			"load + incast overlay + failover on leaf-spine) tracks the " +
			"composition layer's per-event cost. PR 4 per-runner numbers " +
			"are the fixed 'before'.",
	}

	regressed := false
	checkGate := func(m Measurement) {
		if prev == nil || !gateBenches[m.Name] {
			return
		}
		before, ok := prev[m.Name]
		if !ok {
			// A benchmark newer than the comparison snapshot cannot be
			// gated against it; say so instead of failing the gate.
			fmt.Printf("gate skip: %s not in %s (new benchmark)\n", m.Name, *compare)
			return
		}
		if before <= 0 || m.EventsPerSec <= 0 {
			// A gate benchmark the snapshot cannot vouch for is a broken
			// gate, not a pass — fail loudly instead of silently checking
			// nothing.
			regressed = true
			fmt.Fprintf(os.Stderr, "bench: gate benchmark %s has no comparable events/sec (snapshot %.0f, measured %.0f) in %s\n",
				m.Name, before, m.EventsPerSec, *compare)
			return
		}
		if m.EventsPerSec < before*(1-gateTolerance) {
			regressed = true
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %s: %.0f events/sec vs %.0f in %s (-%.1f%%, gate is -%.0f%%)\n",
				m.Name, m.EventsPerSec, before, *compare,
				(1-m.EventsPerSec/before)*100, gateTolerance*100)
		} else {
			fmt.Printf("gate ok: %s %.0f events/sec vs %.0f (%+.1f%%)\n",
				m.Name, m.EventsPerSec, before, (m.EventsPerSec/before-1)*100)
		}
	}

	add := func(m Measurement) {
		checkGate(m)
		c := Comparison{Measurement: m}
		if b, ok := baselines[m.Name]; ok {
			bCopy := b
			c.Before = &bCopy
			if m.NsPerOp > 0 {
				c.SpeedupX = b.NsPerOp / m.NsPerOp
			}
			if m.AllocsPerOp > 0 {
				c.AllocsRatioX = b.AllocsPerOp / m.AllocsPerOp
			}
		}
		snap.Results = append(snap.Results, c)
		extra := ""
		switch {
		case c.Before != nil && c.AllocsRatioX > 0:
			extra = fmt.Sprintf("  [%.2fx faster, %.0fx fewer allocs]", c.SpeedupX, c.AllocsRatioX)
		case c.Before != nil:
			extra = fmt.Sprintf("  [%.2fx faster]", c.SpeedupX)
		}
		fmt.Printf("%-32s %12.0f ns/op %10.0f allocs/op %12.0f events/sec%s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.EventsPerSec, extra)
	}

	add(measureEngine())
	for _, sb := range specBenches {
		if *gateOnly && !gateBenches[sb.name] {
			continue
		}
		m, err := measureSpec(sb.name, sb.spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		add(m)
	}
	mix, err := measureScenario("Scenario_Mix", exp.ScenarioMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	add(mix)
	if mix.AllocsPerEvent > maxScenarioAllocsPerEvent {
		regressed = true
		fmt.Fprintf(os.Stderr, "bench: Scenario_Mix allocates %.4f allocs/event (gate: %.2f) — the composition layer left the zero-allocation hot path\n",
			mix.AllocsPerEvent, maxScenarioAllocsPerEvent)
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "bench: events/sec regression gate failed")
		os.Exit(1)
	}
	if *gateOnly {
		return // smoke mode: no snapshot
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
