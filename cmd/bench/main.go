// Command bench is the tracked performance harness: it runs the
// simulator's core benchmarks via testing.Benchmark, reports wall-clock,
// events/sec and allocations, and writes a BENCH_<n>.json snapshot so the
// repository records its performance trajectory PR over PR (see PERF.md).
//
// Usage:
//
//	go run ./cmd/bench              # run and write BENCH_2.json
//	go run ./cmd/bench -o out.json  # write elsewhere
//	go run ./cmd/bench -list        # print the benchmark set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

// Measurement is one benchmark's recorded result.
type Measurement struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerSec is discrete events executed per wall-clock second
	// (0 for benchmarks without an engine run).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// AllocsPerEvent normalizes allocation churn by simulation work.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
}

// Baseline is the pre-optimization record a measurement is compared to.
type Baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Comparison pairs a measurement with its recorded baseline.
type Comparison struct {
	Measurement
	Before       *Baseline `json:"before,omitempty"`
	SpeedupX     float64   `json:"speedup_x,omitempty"`
	AllocsRatioX float64   `json:"allocs_reduction_x,omitempty"`
}

// Snapshot is the file format of BENCH_<n>.json.
type Snapshot struct {
	PR      int          `json:"pr"`
	Note    string       `json:"note"`
	Results []Comparison `json:"results"`
}

// baselines are the pre-PR-2 numbers measured on the reference machine
// (Intel Xeon @ 2.10GHz, go1.24, -benchtime 3x) before the
// zero-allocation hot path landed. They are the "before" of this PR's
// acceptance criteria and stay fixed; reruns only refresh the "after".
var baselines = map[string]Baseline{
	"SimulatorThroughput":     {NsPerOp: 25_545_117, AllocsPerOp: 219_802},
	"Fig4_Incast255/powertcp": {NsPerOp: 177_646_179, AllocsPerOp: 1_076_429},
	"Fig4_Incast255/hpcc":     {NsPerOp: 182_628_509, AllocsPerOp: 1_052_347},
}

// spec benchmarks: each runs one experiment spec to completion per op.
var specBenches = []struct {
	name string
	spec exp.Spec
}{
	{"SimulatorThroughput", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(4), exp.WithWindow(sim.Millisecond), exp.WithSeed(1))},
	{"Fig4_Incast255/powertcp", exp.NewSpec("incast", exp.PowerTCP,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig4_Incast255/hpcc", exp.NewSpec("incast", exp.HPCC,
		exp.WithFanIn(255), exp.WithServersPerTor(32),
		exp.WithFlowSize(100_000), exp.WithSeed(1))},
	{"Fig6_WebSearch/powertcp-load20", exp.NewSpec("websearch", exp.PowerTCP,
		exp.WithLoad(0.2), exp.WithSeed(1))},
	// PR 3: the multipath lab rides the same zero-allocation forwarding
	// path — tracked here so an allocating ECMP hash or rebuild would
	// show up as an allocs/op regression.
	{"MP_Permutation/ecmp", exp.NewSpec("permutation", exp.PowerTCP,
		exp.WithRouting("ecmp"), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1))},
	{"MP_Failover/powertcp", exp.NewSpec("failover", exp.PowerTCP,
		exp.WithSeed(1))},
}

func measureSpec(name string, spec exp.Spec) (Measurement, error) {
	var steps float64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := exp.Run(spec)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			steps = r.Scalar("engine_steps")
		}
	})
	if runErr != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, runErr)
	}
	m := Measurement{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if steps > 0 && br.NsPerOp() > 0 {
		m.EventsPerSec = steps / (float64(br.NsPerOp()) / 1e9)
		m.AllocsPerEvent = m.AllocsPerOp / steps
	}
	return m, nil
}

// measureEngine benchmarks the raw scheduler: schedule+run cycles with a
// pre-bound timer, the purest events/sec number the simulator has.
func measureEngine() Measurement {
	const batch = 1024
	var steps uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.New()
		fn := func() {}
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				eng.After(sim.Duration(j%97)*sim.Nanosecond, fn)
			}
			eng.Run()
		}
		steps = eng.Steps()
	})
	m := Measurement{
		Name:        "EngineScheduleRun",
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if br.N > 0 && br.T > 0 {
		m.EventsPerSec = float64(steps) / br.T.Seconds()
		m.AllocsPerEvent = float64(br.AllocsPerOp()) / batch
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_3.json", "output snapshot path")
	list := flag.Bool("list", false, "print the benchmark set and exit")
	flag.Parse()

	if *list {
		fmt.Println("EngineScheduleRun")
		for _, sb := range specBenches {
			fmt.Println(sb.name)
		}
		return
	}

	snap := Snapshot{
		PR: 3,
		Note: "Routing control plane (internal/route): pluggable multipath " +
			"strategies and link failures. The forwarding path keeps the PR 2 " +
			"zero-allocation invariant; PR 2 baselines stay the fixed 'before'.",
	}

	add := func(m Measurement) {
		c := Comparison{Measurement: m}
		if b, ok := baselines[m.Name]; ok {
			bCopy := b
			c.Before = &bCopy
			if m.NsPerOp > 0 {
				c.SpeedupX = b.NsPerOp / m.NsPerOp
			}
			if m.AllocsPerOp > 0 {
				c.AllocsRatioX = b.AllocsPerOp / m.AllocsPerOp
			}
		}
		snap.Results = append(snap.Results, c)
		extra := ""
		if c.Before != nil {
			extra = fmt.Sprintf("  [%.2fx faster, %.0fx fewer allocs]", c.SpeedupX, c.AllocsRatioX)
		}
		fmt.Printf("%-32s %12.0f ns/op %10.0f allocs/op %12.0f events/sec%s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.EventsPerSec, extra)
	}

	add(measureEngine())
	for _, sb := range specBenches {
		m, err := measureSpec(sb.name, sb.spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		add(m)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
