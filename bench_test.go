// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see the experiment↔figure index and paper-vs-measured
// record in EXPERIMENTS.md). Benchmarks run at a scaled-down topology so
// `go test -bench=.` finishes in minutes; cmd/figures -full regenerates
// the same data at paper scale. Headline quantities are attached to each
// benchmark via ReportMetric, so the bench output *is* the reproduction
// record. Every benchmark drives the same registry/spec API the
// commands use.
package powertcp

import (
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/workload"
)

func fluidSys(law fluid.Law) *fluid.System {
	return &fluid.System{
		B: 100 * units.Gbps, Tau: 20 * sim.Microsecond,
		Gamma: 0.9, Dt: 10 * sim.Microsecond, Beta: 12_500, Law: law,
	}
}

func mustRun(b *testing.B, spec exp.Spec) *exp.Result {
	b.Helper()
	r, err := exp.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// reportEventsPerSec attaches simulator throughput — discrete events
// executed per wall-clock second, from the run's engine_steps scalar —
// so the bench log records the engine's speed alongside each figure.
func reportEventsPerSec(b *testing.B, r *exp.Result) {
	b.Helper()
	if s := r.Scalar("engine_steps"); s > 0 {
		b.ReportMetric(s*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	}
}

// BenchmarkFig2_ResponseCurves regenerates the multiplicative-decrease
// response surfaces and the three-case table of Figure 2.
func BenchmarkFig2_ResponseCurves(b *testing.B) {
	b.ReportAllocs()
	s := fluidSys(fluid.Power)
	bps := (100 * units.Gbps).BytesPerSec()
	var sink float64
	for i := 0; i < b.N; i++ {
		for r := 0.0; r <= 8; r += 0.25 {
			sink += fluidSys(fluid.Voltage).MDResponse(25*1048, r*bps)
			sink += fluidSys(fluid.Current).MDResponse(25*1048, r*bps)
		}
		for q := 0.0; q <= 60*1048; q += 1048 {
			sink += fluidSys(fluid.Voltage).MDResponse(q, 2*bps)
			sink += fluidSys(fluid.Current).MDResponse(q, 2*bps)
		}
	}
	cases := s.Fig2cCases()
	b.ReportMetric(cases[0].VoltageMD, "case1-voltageMD")
	b.ReportMetric(cases[0].CurrentMD, "case1-currentMD")
	b.ReportMetric(cases[1].CurrentMD, "case2-currentMD")
	_ = sink
}

// BenchmarkFig3_PhasePlots integrates the phase-plot trajectories of all
// three control-law families (Figure 3).
func BenchmarkFig3_PhasePlots(b *testing.B) {
	b.ReportAllocs()
	inits := []fluid.State{{W: 2e4, Q: 0}, {W: 5e5, Q: 1e5}, {W: 1.5e6, Q: 3e5}}
	for i := 0; i < b.N; i++ {
		for _, law := range []fluid.Law{fluid.Voltage, fluid.Current, fluid.Power} {
			s := fluidSys(law)
			for _, st := range inits {
				s.Trajectory(st, 1e-6, 3000)
			}
		}
	}
	// Headline: the power law's equilibrium queue is β̂ (near zero).
	eq, _ := fluidSys(fluid.Power).Equilibrium()
	b.ReportMetric(eq.Q, "power-qe-bytes")
}

// BenchmarkFig4_Incast10 runs the 10:1 incast of Figure 4 (top row) for
// each scheme and reports the post-incast queue and goodput.
func BenchmarkFig4_Incast10(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.HPCC, exp.Timely, exp.Homa} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", scheme,
					exp.WithFanIn(10), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("end_queue_kb"), "end-queue-KB")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig4_Incast255 runs the large-scale incast of Figure 4
// (bottom row) on the full 256-server fat-tree.
func BenchmarkFig4_Incast255(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.HPCC} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", scheme,
					exp.WithFanIn(255), exp.WithServersPerTor(32),
					exp.WithFlowSize(100_000), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("end_queue_kb"), "end-queue-KB")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig5_Fairness runs the staggered-arrival fairness scenario of
// Figure 5 and reports the Jain index.
func BenchmarkFig5_Fairness(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.Homa} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("fairness", scheme, exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("jain"), "jain")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig6_FCTvsSize runs the websearch workload at 20% and 60%
// load (Figure 6) and reports per-class 99.9p slowdowns.
func BenchmarkFig6_FCTvsSize(b *testing.B) {
	b.ReportAllocs()
	for _, load := range []float64{0.2, 0.6} {
		for _, scheme := range []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.HPCC, exp.Timely, exp.DCQCN} {
			b.Run(fmt.Sprintf("%s/load%.0f", scheme, load*100), func(b *testing.B) {
				b.ReportAllocs()
				var r *exp.Result
				for i := 0; i < b.N; i++ {
					r = mustRun(b, exp.NewSpec("websearch", scheme,
						exp.WithLoad(load), exp.WithSeed(1)))
				}
				b.ReportMetric(r.Scalar("short_p999"), "short-p999-slowdown")
				b.ReportMetric(r.Scalar("medium_p999"), "medium-p999-slowdown")
				b.ReportMetric(r.Scalar("long_p999"), "long-p999-slowdown")
				reportEventsPerSec(b, r)
			})
		}
	}
}

// BenchmarkFig7ab_LoadSweep sweeps load for short/long flows (Fig. 7a/b).
func BenchmarkFig7ab_LoadSweep(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.HPCC} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("load-sweep", scheme,
					exp.WithLoads(0.2, 0.5, 0.8), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("short_p999_top_load"), "short-p999@80")
			b.ReportMetric(r.Scalar("long_p999_top_load"), "long-p999@80")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig7cd_RequestRate sweeps incast request rate over websearch
// background (Fig. 7c/d).
func BenchmarkFig7cd_RequestRate(b *testing.B) {
	b.ReportAllocs()
	for _, rate := range []float64{1000, 4000} {
		b.Run(fmt.Sprintf("rate%.0f", rate), func(b *testing.B) {
			b.ReportAllocs()
			var pt, hp *exp.Result
			for i := 0; i < b.N; i++ {
				pt = mustRun(b, exp.NewSpec("websearch", exp.PowerTCP,
					exp.WithLoad(0.8), exp.WithSeed(1),
					exp.WithIncastOverlay(rate, 2<<20, 0)))
				hp = mustRun(b, exp.NewSpec("websearch", exp.HPCC,
					exp.WithLoad(0.8), exp.WithSeed(1),
					exp.WithIncastOverlay(rate, 2<<20, 0)))
			}
			b.ReportMetric(pt.Scalar("short_p999"), "powertcp-short-p999")
			b.ReportMetric(hp.Scalar("short_p999"), "hpcc-short-p999")
		})
	}
}

// BenchmarkFig7ef_RequestSize sweeps incast request size (Fig. 7e/f).
func BenchmarkFig7ef_RequestSize(b *testing.B) {
	b.ReportAllocs()
	for _, mb := range []int64{1, 8} {
		b.Run(fmt.Sprintf("size%dMB", mb), func(b *testing.B) {
			b.ReportAllocs()
			var pt *exp.Result
			for i := 0; i < b.N; i++ {
				pt = mustRun(b, exp.NewSpec("websearch", exp.PowerTCP,
					exp.WithLoad(0.8), exp.WithSeed(1),
					exp.WithIncastOverlay(1000, mb<<20, 0)))
			}
			b.ReportMetric(pt.Scalar("short_p999"), "short-p999")
			b.ReportMetric(pt.Scalar("long_p999"), "long-p999")
		})
	}
}

// BenchmarkFig7gh_BufferCDF collects the buffer-occupancy CDFs at 80%
// load (Fig. 7g/h) and reports the p99 occupancy.
func BenchmarkFig7gh_BufferCDF(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.HPCC} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("websearch", scheme,
					exp.WithLoad(0.8), exp.WithSeed(1), exp.WithBufferSampling(true)))
			}
			b.ReportMetric(r.Scalar("buffer_p99_bytes")/1024, "p99-buffer-KB")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig8a_RDCNTimeseries runs the RDCN case study's time series
// (Fig. 8a) and reports circuit utilization — the 80–85% headline.
func BenchmarkFig8a_RDCNTimeseries(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.HPCC, exp.ReTCP600, exp.ReTCP1800} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("rdcn", scheme, exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("circuit_utilization")*100, "circuit-util-pct")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig8b_RDCNTail sweeps the packet-network bandwidth and
// reports tail queuing latency (Fig. 8b).
func BenchmarkFig8b_RDCNTail(b *testing.B) {
	b.ReportAllocs()
	for _, pg := range []units.BitRate{25 * units.Gbps, 50 * units.Gbps} {
		for _, scheme := range []string{exp.ReTCP1800, exp.PowerTCP} {
			b.Run(fmt.Sprintf("%s/%v", scheme, pg), func(b *testing.B) {
				b.ReportAllocs()
				var r *exp.Result
				for i := 0; i < b.N; i++ {
					r = mustRun(b, exp.NewSpec("rdcn", scheme,
						exp.WithPacketRate(pg), exp.WithSeed(1)))
				}
				b.ReportMetric(r.Scalar("tail_queuing_us"), "tail-queuing-us")
				reportEventsPerSec(b, r)
			})
		}
	}
}

// BenchmarkFig9_HomaOvercommit sweeps HOMA's overcommitment level in the
// fairness scenario (Figure 9 / Appendix D).
func BenchmarkFig9_HomaOvercommit(b *testing.B) {
	b.ReportAllocs()
	for oc := 1; oc <= 6; oc += 1 {
		b.Run(fmt.Sprintf("oc%d", oc), func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("fairness", fmt.Sprintf("homa-oc%d", oc),
					exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("jain"), "jain")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkFig10_11_HomaIncast runs HOMA's 10:1 incast across
// overcommitment levels (Figures 10–11). The overcommitment composes as
// a scheme option instead of a parsed name, exercising that path too.
func BenchmarkFig10_11_HomaIncast(b *testing.B) {
	b.ReportAllocs()
	for _, oc := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("oc%d", oc), func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", exp.Homa,
					exp.WithSchemeOptions(exp.Overcommit(oc)),
					exp.WithFanIn(10), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkAblation_Gamma sweeps PowerTCP's EWMA weight γ in the incast
// scenario — the design-choice ablation behind the paper's γ=0.9
// recommendation (§3.3).
func BenchmarkAblation_Gamma(b *testing.B) {
	b.ReportAllocs()
	for _, gamma := range []float64{0.5, 0.7, 0.9, 1.0} {
		b.Run(fmt.Sprintf("gamma%.1f", gamma), func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", exp.PowerTCP,
					exp.WithSchemeOptions(exp.Gamma(gamma)),
					exp.WithFanIn(10), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkAblation_PerRTTUpdates compares per-ACK vs once-per-RTT
// window updates (the RDCN configuration of §5) in the incast scenario.
func BenchmarkAblation_PerRTTUpdates(b *testing.B) {
	b.ReportAllocs()
	for _, perRTT := range []bool{false, true} {
		b.Run(fmt.Sprintf("perRTT=%v", perRTT), func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", exp.PowerTCP,
					exp.WithSchemeOptions(exp.PerRTT(perRTT)),
					exp.WithFanIn(10), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("end_queue_kb"), "end-queue-KB")
		})
	}
}

// BenchmarkAblation_StandingQueue contrasts the standing queue of
// loss/ECN-based CC (§2.2's critique of DCTCP and NewReno) with
// PowerTCP's near-zero equilibrium: the end-of-run queue after the same
// incast tells the story.
func BenchmarkAblation_StandingQueue(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.DCTCP, exp.Reno} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", scheme,
					exp.WithFanIn(8), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("tail_mean_queue_kb"), "standing-queue-KB")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkAblation_DTAlpha sweeps the Dynamic Thresholds factor to show
// buffer management's effect on the large incast.
func BenchmarkAblation_DTAlpha(b *testing.B) {
	b.ReportAllocs()
	for _, alpha := range []float64{0.25, 1, 4} {
		b.Run(fmt.Sprintf("alpha%.2f", alpha), func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("incast", exp.PowerTCP,
					exp.WithSchemeOptions(exp.Alpha(alpha)),
					exp.WithFanIn(32), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
			b.ReportMetric(r.Scalar("completed"), "flows-done")
		})
	}
}

// BenchmarkMP_Permutation runs the host-permutation multipath stress
// (supplementary figure, panel A) under single-path and ECMP routing —
// the goodput/fairness gap is the cost of not spreading.
func BenchmarkMP_Permutation(b *testing.B) {
	b.ReportAllocs()
	for _, routing := range []string{"single", "ecmp"} {
		b.Run(routing, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("permutation", exp.PowerTCP,
					exp.WithRouting(routing), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("jain"), "jain")
			b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
			b.ReportMetric(r.Scalar("uplinks_used"), "uplinks-used")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkMP_Asymmetry crosses an unequal-spine fabric (100G + 50G)
// with capacity-blind ECMP vs weighted ECMP (panel B).
func BenchmarkMP_Asymmetry(b *testing.B) {
	b.ReportAllocs()
	for _, routing := range []string{"ecmp", "wecmp"} {
		b.Run(routing, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("asymmetry", exp.PowerTCP,
					exp.WithRouting(routing), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("efficiency"), "efficiency")
			b.ReportMetric(r.Scalar("jain"), "jain")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkMP_Failover cuts a spine link mid-run (panel C) and reports
// per-scheme recovery time and queue spike.
func BenchmarkMP_Failover(b *testing.B) {
	b.ReportAllocs()
	for _, scheme := range []string{exp.PowerTCP, exp.HPCC, exp.Timely} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			var r *exp.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, exp.NewSpec("failover", scheme, exp.WithSeed(1)))
			}
			b.ReportMetric(r.Scalar("recovery_us"), "recovery-us")
			b.ReportMetric(r.Scalar("queue_spike_kb"), "queue-spike-KB")
			b.ReportMetric(r.Scalar("lost_packets"), "lost-pkts")
			reportEventsPerSec(b, r)
		})
	}
}

// BenchmarkScale_Incast1024 stresses the scheduler at scale: a 1024:1
// incast across a 1280-server fat-tree keeps tens of thousands of
// events pending at once — the regime where the old binary heap paid
// O(log n) per pop and the timing wheel stays O(1) (PERF.md, BENCH_4).
func BenchmarkScale_Incast1024(b *testing.B) {
	b.ReportAllocs()
	var r *exp.Result
	for i := 0; i < b.N; i++ {
		r = mustRun(b, exp.NewSpec("incast", exp.PowerTCP,
			exp.WithFanIn(1024), exp.WithServersPerTor(160),
			exp.WithFlowSize(50_000), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1)))
	}
	b.ReportMetric(r.Scalar("peak_queue_kb"), "peak-queue-KB")
	b.ReportMetric(r.Scalar("avg_goodput_gbps"), "goodput-Gbps")
	b.ReportMetric(r.Scalar("completed"), "flows-done")
	reportEventsPerSec(b, r)
}

// BenchmarkScenario_Mix runs the composed scenario exp.ScenarioMix
// (websearch load + incast overlay + failover timeline on a
// leaf-spine; the same builder cmd/bench tracks as Scenario_Mix) end
// to end — the per-event cost of the composition layer rides the same
// regression gate as the per-runner presets it replaced.
func BenchmarkScenario_Mix(b *testing.B) {
	b.ReportAllocs()
	var r *exp.Result
	for i := 0; i < b.N; i++ {
		// Scenarios are single-use (probes hold run state): build a
		// fresh value per iteration.
		sc, err := exp.ScenarioMix(1)
		if err != nil {
			b.Fatal(err)
		}
		if r, err = RunScenario(sc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Scalar("completed"), "flows-done")
	b.ReportMetric(r.Scalar("goodput_gbps_avg"), "goodput-Gbps")
	reportEventsPerSec(b, r)
}

// BenchmarkSimulatorThroughput measures raw simulator speed: events per
// second pushing an unbounded PowerTCP flow across the fat-tree.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var r *exp.Result
	for i := 0; i < b.N; i++ {
		r = mustRun(b, exp.NewSpec("incast", exp.PowerTCP,
			exp.WithFanIn(4), exp.WithWindow(sim.Millisecond), exp.WithSeed(1)))
	}
	reportEventsPerSec(b, r)
}

// BenchmarkSuiteParallelism runs the same five-spec suite serially and
// with the full worker pool — the speedup is the parallel harness's
// reason to exist.
func BenchmarkSuiteParallelism(b *testing.B) {
	b.ReportAllocs()
	specs := func() []exp.Spec {
		var out []exp.Spec
		for _, scheme := range []string{exp.PowerTCP, exp.ThetaPowerTCP, exp.HPCC, exp.Timely, exp.Homa} {
			out = append(out, exp.NewSpec("incast", scheme,
				exp.WithFanIn(10), exp.WithWindow(2*sim.Millisecond), exp.WithSeed(1)))
		}
		return out
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				suite := exp.Suite{Specs: specs(), Workers: workers}
				if _, err := suite.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScale_FatTree10k drives the parallel fabric at scale: a
// 10,240-host, 16-pod fat-tree under permutation traffic, sharded
// across 8 partition engines (internal/psim). Topology build and flow
// launch run off the clock, so the events/sec metric is pure drive
// throughput. Run with -cpu 1,2,4,8 to sweep GOMAXPROCS: output is
// byte-identical at every width (the partitioned determinism suite pins
// it), so the events/sec ratio across -cpu values is the conservative
// sync fabric's parallel speedup. cmd/bench records the same fabric
// across partition counts in BENCH_6.json.
func BenchmarkScale_FatTree10k(b *testing.B) {
	b.ReportAllocs()
	var steps uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scheme, err := scenario.ResolveScheme(scenario.PowerTCP)
		if err != nil {
			b.Fatal(err)
		}
		lab := scenario.NewConfiguredFatTreeLab(scheme, topo.FatTreeConfig{
			Pods: 16, TorsPerPod: 16, AggsPerPod: 8, Cores: 16,
			ServersPerTor: 40, Parts: 8,
		}, 1, nil)
		for src, dst := range workload.Permutation(len(lab.Net.Hosts), 1) {
			lab.Launch(workload.Flow{Src: src, Dst: dst, Size: lab.UnboundedSize()})
		}
		b.StartTimer()
		lab.Net.PSim.Run(sim.Time(200 * sim.Microsecond))
		b.StopTimer()
		steps = lab.Net.Steps()
		lab.Release()
		b.StartTimer()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
